// morph-served: the morph job-server daemon (docs/SERVER.md).
//
//   morph-served --socket=/tmp/morph.sock [--pool=N] [--workers=N]
//                [--queue-cap=CYCLES] [--max-job-cycles=CYCLES]
//                [--batch-max=N] [--batch-linger=N] [--small-job=CYCLES]
//                [--dispatch-cycles=C] [--default-gap=CYCLES]
//                [--host-workers=N] [--worklist-mode=M]
//                [--journal=PATH] [--journal-fsync=always|none|N]
//                [--journal-checkpoint=N]
//                [--drain-deadline-ms=MS] [--quarantine-threshold=N]
//
// Serves morph jobs (dmr / sp / pta / mst) over a unix socket until a client
// sends "shutdown" (drains, then exits) or a signal arrives. SIGTERM is the
// graceful path: stop accepting, finish every admitted job, emit every
// result, checkpoint the journal, exit 0. SIGINT is the hard stop: in-flight
// batches finish but queued, unemitted work is abandoned (with --journal the
// next start recovers it). Prints "listening on <path>" once the socket is
// ready so scripts can wait for it.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "support/cli.hpp"

namespace {

int g_stop_pipe[2] = {-1, -1};

void on_signal(int sig) {
  // Relay which signal fired — SIGTERM drains, SIGINT hard-stops. The pipe
  // is the only async-signal-safe wakeup we need.
  const char b = sig == SIGTERM ? 'T' : 'I';
  [[maybe_unused]] const ssize_t w = ::write(g_stop_pipe[1], &b, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using morph::CliArgs;
  morph::serve::ServerConfig cfg;

  CliArgs args(argc, argv);
  args.warn_unknown(
      {"socket", "pool", "workers", "queue-cap", "max-job-cycles", "batch-max",
       "batch-linger", "small-job", "dispatch-cycles", "default-gap",
       "host-workers", "worklist-mode", "worklist-shards", "journal",
       "journal-fsync", "journal-checkpoint", "drain-deadline-ms",
       "quarantine-threshold"},
      std::cerr);

  cfg.socket_path = args.get("socket", cfg.socket_path);
  cfg.sched.pool =
      static_cast<std::uint32_t>(args.get_positive_int("pool", 1));
  cfg.workers = static_cast<std::uint32_t>(args.get_int("workers", 0));
  cfg.sched.queue_cap_cycles =
      args.get_double("queue-cap", cfg.sched.queue_cap_cycles);
  cfg.sched.max_job_cycles =
      args.get_double("max-job-cycles", cfg.sched.max_job_cycles);
  cfg.sched.batch_max =
      static_cast<std::uint32_t>(args.get_positive_int("batch-max", 8));
  cfg.sched.batch_linger = static_cast<std::uint64_t>(
      args.get_int("batch-linger", static_cast<std::int64_t>(
                                       cfg.sched.batch_linger)));
  cfg.sched.small_job_cycles =
      args.get_double("small-job", cfg.sched.small_job_cycles);
  cfg.sched.dispatch_cycles =
      args.get_double("dispatch-cycles", cfg.sched.dispatch_cycles);
  cfg.sched.default_gap_cycles =
      args.get_double("default-gap", cfg.sched.default_gap_cycles);
  cfg.device.host_workers = morph::host_workers_arg(args);
  const std::string wm = args.get("worklist-mode", "centralized");
  if (!morph::gpu::parse_worklist_mode(wm, &cfg.device.worklist_mode)) {
    std::cerr << "error: --worklist-mode must be 'centralized' or 'sharded' "
                 "(got '"
              << wm << "')\n";
    return 2;
  }
  cfg.device.worklist_shards =
      static_cast<std::uint32_t>(args.get_int("worklist-shards", 0));
  cfg.journal.path = args.get("journal", "");
  const std::string fsync_policy = args.get("journal-fsync", "always");
  if (!morph::serve::parse_fsync_policy(fsync_policy, &cfg.journal)) {
    std::cerr << "error: --journal-fsync must be 'always', 'none', or a "
                 "positive record count (got '"
              << fsync_policy << "')\n";
    return 2;
  }
  cfg.journal.checkpoint_every = static_cast<std::uint64_t>(args.get_int(
      "journal-checkpoint",
      static_cast<std::int64_t>(cfg.journal.checkpoint_every)));
  cfg.drain_deadline_ms =
      args.get_double("drain-deadline-ms", cfg.drain_deadline_ms);
  cfg.quarantine_threshold = static_cast<std::uint32_t>(
      args.get_int("quarantine-threshold",
                   static_cast<std::int64_t>(cfg.quarantine_threshold)));

  if (::pipe(g_stop_pipe) != 0) {
    std::cerr << "error: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  morph::serve::Server server(cfg);
  const morph::Status s = server.start();
  if (!s.ok()) {
    std::cerr << "error: " << s.to_string() << "\n";
    return 1;
  }
  if (server.recovered_jobs() > 0) {
    std::cout << "morph-served: recovered " << server.recovered_jobs()
              << " unfinished job(s) from " << cfg.journal.path << "\n"
              << std::flush;
  }
  std::cout << "listening on " << cfg.socket_path << "\n" << std::flush;

  // Relay signals into the matching stop; server.wait() also returns when a
  // client-driven shutdown drained the queue.
  int exit_code = 0;
  std::thread relay([&server, &exit_code] {
    char b = 0;
    while (::read(g_stop_pipe[0], &b, 1) < 0 && errno == EINTR) {
    }
    if (b == 'T') {
      if (server.drain_stop()) {
        std::cout << "morph-served: drained " << server.drained_jobs()
                  << " job(s)\n"
                  << std::flush;
      } else {
        std::cerr << "morph-served: drain deadline exceeded; hard stop "
                     "(journal keeps the tail)\n";
        exit_code = 3;
      }
      return;
    }
    server.request_stop();
  });
  server.wait();
  // Unblock the relay if the stop came from a client shutdown.
  on_signal(0);
  relay.join();
  std::cout << "morph-served: stopped\n";
  return exit_code;
}
