// morph-report: inspect, diff, and merge BenchReport JSON files.
//
//   morph-report show  <report.json>
//   morph-report diff  <base.json> <current.json>
//                      [--threshold=REL] [--threshold-<metric>=REL]
//                      [--threshold-abs=ABS] [--threshold-abs-<metric>=ABS]
//   morph-report merge <out.json> <in.json>... [--name=NAME]
//
// `diff` exits 0 when every gated metric is within threshold, 1 on a
// regression or structural change (CI uses it as a perf gate), 2 on usage
// or file errors. Thresholds are relative increases: --threshold=0.05
// allows +5% on every gated metric; --threshold-atomics=0 makes any growth
// in atomics fail. Zero baselines gate on the absolute thresholds instead
// (--threshold-abs; default 0), since any growth from 0 is "+inf%". See
// docs/TELEMETRY.md for the report schema.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/report_diff.hpp"

namespace {

using morph::CliArgs;
using morph::Table;
using namespace morph::telemetry;

int usage(std::ostream& out, int code) {
  out << "usage:\n"
         "  morph-report show  <report.json>\n"
         "  morph-report diff  <base.json> <current.json>\n"
         "                     [--threshold=REL] [--threshold-<metric>=REL]\n"
         "                     [--threshold-abs=ABS] "
         "[--threshold-abs-<metric>=ABS]\n"
         "  morph-report merge <out.json> <in.json>... [--name=NAME]\n";
  return code;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string pct(double rel) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", rel * 100.0);
  return buf;
}

int cmd_show(const BenchReport& rep) {
  std::cout << "bench:     " << rep.bench << "\n"
            << "title:     " << rep.title << "\n"
            << "clock_ghz: " << num(rep.clock_ghz) << "\n";
  if (!rep.args.empty()) {
    std::cout << "args:     ";
    for (const auto& [k, v] : rep.args) std::cout << " --" << k << "=" << v;
    std::cout << "\n";
  }
  std::cout << "\n";
  Table t({"row", "metric", "value"});
  for (const auto& row : rep.rows) {
    bool first = true;
    for (const auto& [metric, value] : row.metrics) {
      t.add_row({first ? row.name : "", metric, num(value)});
      first = false;
    }
  }
  t.print(std::cout);
  if (rep.serve.enabled) {
    std::cout << "\nserve:\n";
    Table st({"metric", "value"});
    for (const auto& [metric, value] : rep.serve.metrics) {
      st.add_row({metric, num(value)});
    }
    st.print(std::cout);
  }
  return 0;
}

int cmd_diff(const BenchReport& base, const BenchReport& cur,
             const CliArgs& args) {
  DiffThresholds th;
  th.default_rel = args.get_double("threshold", th.default_rel);
  th.default_abs = args.get_double("threshold-abs", th.default_abs);
  for (const auto& [flag, value] : args.flags()) {
    const std::string abs_prefix = "threshold-abs-";
    const std::string prefix = "threshold-";
    if (flag.rfind(abs_prefix, 0) == 0 && flag.size() > abs_prefix.size()) {
      th.per_metric_abs.emplace_back(flag.substr(abs_prefix.size()),
                                     std::strtod(value.c_str(), nullptr));
    } else if (flag != "threshold-abs" && flag.rfind(prefix, 0) == 0 &&
               flag.size() > prefix.size()) {
      th.per_metric.emplace_back(flag.substr(prefix.size()),
                                 std::strtod(value.c_str(), nullptr));
    }
  }

  const DiffResult res = diff_reports(base, cur, th);

  for (const std::string& s : res.structural) {
    std::cout << "structural: " << s << "\n";
  }
  if (!res.deltas.empty()) {
    Table t({"row", "metric", "base", "current", "change", "status"});
    for (const MetricDelta& d : res.deltas) {
      const char* status = d.regression      ? "REGRESSION"
                           : !d.gated        ? "info"
                           : d.current < d.base ? "improved"
                                                : "ok";
      // A zero baseline has no meaningful percentage; show the absolute
      // step instead of "+inf%".
      std::string change;
      if (d.base != 0.0) {
        change = pct(d.rel_change);
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%+.6g abs", d.current - d.base);
        change = buf;
      }
      t.add_row({d.row, d.metric, num(d.base), num(d.current), change,
                 status});
    }
    t.print(std::cout);
  }

  if (res.clean()) {
    std::cout << (res.deltas.empty() ? "identical" : "within thresholds")
              << " (" << res.deltas.size() << " changed metrics)\n";
  } else {
    std::size_t regressions = 0;
    for (const MetricDelta& d : res.deltas) regressions += d.regression;
    std::cout << "FAIL: " << regressions << " regression(s), "
              << res.structural.size() << " structural change(s)\n";
  }
  return res.exit_code();
}

int cmd_merge(const CliArgs& args) {
  const auto& pos = args.positional();
  if (pos.size() < 3) return usage(std::cerr, 2);
  std::vector<BenchReport> reports;
  for (std::size_t i = 2; i < pos.size(); ++i) {
    reports.push_back(BenchReport::load(pos[i]));
  }
  const BenchReport merged =
      merge_reports(reports, args.get("name", "merged"));
  merged.save(pos[1]);
  std::cout << "wrote " << pos[1] << " (" << merged.rows.size()
            << " rows from " << reports.size() << " reports)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto& pos = args.positional();
  if (pos.empty()) return usage(std::cerr, 2);

  std::vector<std::string> known = {"threshold", "threshold-abs", "name"};
  for (const auto& [flag, value] : args.flags()) {
    (void)value;
    if (flag.rfind("threshold-", 0) == 0) known.push_back(flag);
  }
  args.warn_unknown(known, std::cerr);

  try {
    const std::string& cmd = pos[0];
    if (cmd == "show" && pos.size() == 2) {
      return cmd_show(BenchReport::load(pos[1]));
    }
    if (cmd == "diff" && pos.size() == 3) {
      return cmd_diff(BenchReport::load(pos[1]), BenchReport::load(pos[2]),
                      args);
    }
    if (cmd == "merge") {
      return cmd_merge(args);
    }
    if (cmd == "help" || args.has("help")) {
      return usage(std::cout, 0);
    }
  } catch (const morph::CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage(std::cerr, 2);
}
