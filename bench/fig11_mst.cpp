// Figure 11 (table): Boruvka MST performance.
//
// Paper rows: USA and W road networks (sparse), RMAT20 and Random4-20
// (dense), grid-2d-24 and grid-2d-20. Galois 2.1.4 (explicit edge merging)
// beats the GPU on the sparse inputs but collapses on RMAT/random (1,393 s
// vs the GPU's 26.8 s); the rewritten 2.1.5 (component/union-find) is the
// fastest everywhere. Sizes here are scaled; densities match the paper's.
#include <cmath>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mst/mst.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  using graph::CsrGraph;
  bench::Bench bench(argc, argv, "Fig. 11 — Boruvka MST",
                     "GPU slower than Galois 2.1.4 on sparse road/grid, far "
                     "faster on dense RMAT/random; 2.1.5 fastest",
                     {"scale"});
  const auto scale =
      static_cast<std::uint32_t>(bench.args().get_positive_int("scale", 64));

  struct Spec {
    std::string name;
    std::vector<graph::Edge> edges;
    graph::Node n;
  };
  std::vector<Spec> specs;
  {
    // USA road: 23.9M nodes / 57.7M edges, avg degree 2.4.
    const graph::Node n = 23900000u / scale;
    specs.push_back({"USA (road)", graph::gen_road_like(n, 2.4, 1), n});
  }
  {
    // W road: 6.3M nodes / 15.1M edges.
    const graph::Node n = 6300000u / scale;
    specs.push_back({"W (road)", graph::gen_road_like(n, 2.4, 2), n});
  }
  {
    // RMAT20: 2^20 nodes, 8.3M edges (avg degree ~8.3, heavy skew).
    std::uint32_t s = 20;
    std::uint32_t div = scale;
    while (div > 1) {
      --s;
      div /= 2;
    }
    const graph::Node n = graph::Node{1} << s;
    specs.push_back(
        {"RMAT20", graph::gen_rmat(s, static_cast<graph::EdgeId>(8.3 * n), 3),
         n});
  }
  {
    // Random4-20: 2^20 nodes, 4 edges per node.
    const graph::Node n = 1048576u / scale;
    specs.push_back({"Random4-20",
                     graph::gen_random_uniform(n, 4ull * n, 1 << 20, 4), n});
  }
  {
    // grid-2d-24: 16.8M nodes; grid-2d-20: 1M nodes.
    const auto side24 =
        static_cast<std::uint32_t>(std::sqrt(16800000.0 / scale));
    specs.push_back({"grid-2d-24", graph::gen_grid2d(side24, 1 << 16, 5),
                     side24 * side24});
    const auto side20 =
        static_cast<std::uint32_t>(std::sqrt(1000000.0 / scale));
    specs.push_back({"grid-2d-20", graph::gen_grid2d(side20, 1 << 16, 6),
                     side20 * side20});
  }

  Table t({"graph", "N x1e6 (paper)", "M x1e6 (paper)", "Galois 2.1.4",
           "Galois 2.1.5", "GPU model-ms", "weights agree"});
  for (const Spec& s : specs) {
    auto g = CsrGraph::from_undirected_edges(s.n, s.edges);

    const mst::MstResult kr = mst::mst_kruskal(g);
    gpu::Device dev(bench.device_config());
    const mst::MstResult gp = mst::mst_gpu(g, dev);
    cpu::ParallelRunner r1({.workers = 48}), r2({.workers = 48});
    const mst::MstResult em = mst::mst_edge_merge(g, r1);
    const mst::MstResult uf = mst::mst_union_find(g, r2);

    const bool agree = gp.total_weight == kr.total_weight &&
                       em.total_weight == kr.total_weight &&
                       uf.total_weight == kr.total_weight;
    t.add_row({s.name, Table::num(s.n * scale / 1e6, 1),
               Table::num(g.num_edges() / 2.0 * scale / 1e6, 1),
               bench.fmt_ms(bench.model_ms(em.modeled_cycles)),
               bench.fmt_ms(bench.model_ms(uf.modeled_cycles)),
               bench.fmt_ms(bench.model_ms(gp.modeled_cycles)),
               agree ? "yes" : "NO"});

    auto& rep = bench.add_row(s.name);
    bench.add_device_metrics(rep, dev);
    rep.metric("nodes", static_cast<double>(s.n))
        .metric("edges", g.num_edges() / 2.0)
        .metric("galois214_model_ms", bench.model_ms(em.modeled_cycles))
        .metric("galois215_model_ms", bench.model_ms(uf.modeled_cycles))
        .metric("weights_agree", agree ? 1.0 : 0.0);
  }
  t.print(std::cout);
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
