// Figure 7 (table): DMR speedup of Galois-48 and the GPU over the
// sequential Triangle program.
//
// Paper values: Galois-48 = 26.5x..28.6x, GPU = 54.6x..80.5x over serial,
// on meshes of 0.5M..10M triangles (~half bad). Speedups here are ratios of
// modeled times on the same (scaled) inputs.
#include "bench_common.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv, "Fig. 7 — DMR speedups over sequential",
                     "paper: Galois-48 26.5-28.6x, GPU 54.6-80.5x",
                     {"scale"});
  const auto scale =
      static_cast<std::size_t>(bench.args().get_positive_int("scale", 10));
  const std::size_t paper_sizes[] = {500000, 1000000, 2000000, 10000000};

  Table t({"total x1e6 (paper)", "bad x1e6", "speedup Galois-48",
           "speedup GPU"});
  for (std::size_t paper_n : paper_sizes) {
    const std::size_t n = paper_n / scale;
    dmr::Mesh base = dmr::generate_input_mesh(n, 7);
    dmr::Mesh tmp = base;
    const std::size_t bad = tmp.compute_all_bad(30.0);

    dmr::Mesh ms = base;
    cpu::ParallelRunner seq({.workers = 1});
    dmr::refine_multicore(ms, seq);
    const double serial = seq.stats().modeled_cycles;

    dmr::Mesh mm = base;
    cpu::ParallelRunner g48({.workers = 48});
    dmr::refine_multicore(mm, g48);
    const double galois = g48.stats().modeled_cycles;

    dmr::Mesh mg = base;
    gpu::Device dev(bench.device_config());
    dmr::refine_gpu(mg, dev);
    const double gpu = dev.stats().modeled_cycles;

    t.add_row({Table::num(paper_n / 1e6, 1), Table::num(bad * scale / 1e6, 2),
               Table::num(serial / galois, 1), Table::num(serial / gpu, 1)});

    auto& rep = bench.add_row(Table::num(paper_n / 1e6, 1) + "M");
    bench.add_device_metrics(rep, dev);
    rep.metric("bad", static_cast<double>(bad))
        .metric("serial_modeled_cycles", serial)
        .metric("galois48_modeled_cycles", galois)
        .metric("speedup_galois48", serial / galois)
        .metric("speedup_gpu", serial / gpu);
  }
  t.print(std::cout);
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
