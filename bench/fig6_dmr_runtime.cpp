// Figure 6: DMR runtime of the GPU, sequential CPU (Triangle), and
// multicore CPU (Galois) codes for different inputs.
//
// The paper plots, per input mesh size (0.5M/1M/2M/10M triangles, ~half
// bad), the Galois runtime against thread count (1..48) with two horizontal
// lines: the sequential Triangle time and the GPU time; the GPU beats
// Galois-48 everywhere. Sizes here are the paper's divided by --scale
// (default 10). Cross-platform numbers are modeled milliseconds; wall-clock
// of the real refinement is shown for reference.
#include "bench_common.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv,
                     "Fig. 6 — DMR runtime: GPU vs Triangle vs Galois",
                     "GPU line sits below Galois at every thread count",
                     {"scale"});
  const auto scale =
      static_cast<std::size_t>(bench.args().get_positive_int("scale", 10));
  const std::size_t paper_sizes[] = {500000, 1000000, 2000000, 10000000};
  const std::uint32_t thread_counts[] = {1, 4, 16, 48};

  Table t({"input (paper)", "triangles", "bad", "serial model-ms",
           "galois-1", "galois-4", "galois-16", "galois-48", "GPU model-ms",
           "GPU wall-s"});
  for (std::size_t paper_n : paper_sizes) {
    const std::size_t n = paper_n / scale;
    dmr::Mesh base = dmr::generate_input_mesh(n, 7);

    // Sequential Triangle stand-in: modeled time = total work at 1 worker.
    dmr::Mesh ms = base;
    cpu::ParallelRunner seq({.workers = 1});
    dmr::refine_multicore(ms, seq);
    const double serial_ms = bench.model_ms(seq.stats().modeled_cycles);

    std::vector<std::string> row = {
        std::to_string(paper_n / 1000000.0).substr(0, 4) + "M/" +
            std::to_string(scale),
        std::to_string(base.num_live()), "", ""};
    dmr::Mesh tmp = base;
    const std::size_t bad = tmp.compute_all_bad(30.0);
    row[2] = std::to_string(bad);
    row[3] = bench.fmt_ms(serial_ms);

    auto& rep = bench.add_row(row[0]);
    rep.metric("triangles", static_cast<double>(base.num_live()))
        .metric("bad", static_cast<double>(bad))
        .metric("serial_model_ms", serial_ms);

    for (std::uint32_t workers : thread_counts) {
      dmr::Mesh m = base;
      cpu::ParallelRunner runner({.workers = workers});
      dmr::refine_multicore(m, runner);
      const double ms_galois = bench.model_ms(runner.stats().modeled_cycles);
      row.push_back(bench.fmt_ms(ms_galois));
      rep.metric("galois" + std::to_string(workers) + "_model_ms", ms_galois);
    }

    dmr::Mesh mg = base;
    gpu::Device dev(bench.device_config());
    const dmr::RefineStats gs = dmr::refine_gpu(mg, dev);
    row.push_back(bench.fmt_ms(bench.model_ms(gs.modeled_cycles)));
    row.push_back(Table::num(gs.wall_seconds, 2));
    t.add_row(row);
    bench.add_device_metrics(rep, dev);
    rep.metric("wall_seconds", gs.wall_seconds);
  }
  t.print(std::cout);
  std::cout << "\n(paper: GPU 2-4x faster than Galois-48 on all sizes)\n";
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
