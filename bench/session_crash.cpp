// Session crash campaign for the morph job server (docs/SERVER.md,
// "Sessions" + "Durability & operations").
//
//   session_crash [--updates=24] [--rows=8] [--nodes=256] [--vars=128]
//                 [--seed=1] [--socket=PATH] [--journal=PATH]
//                 [--checkpoint-every=4] [--json=REPORT]
//
// One deterministic stream of session frames — open an mst session and a
// pta session, interleave update batches, close both — is first replayed
// against an uninterrupted journal-less server to record the reference
// reply bytes. Then, for each kill point, the same stream runs against a
// forked server child with a write-ahead journal (checkpoint compaction
// on): after N replies the child is SIGKILLed, a recovery child restarts
// from the journal, the client reconnects, resends the last answered frame
// with its original arrival stamp (the parked replay reply must be
// byte-identical), and streams the remainder. Every reply of every crash
// run must match the reference byte for byte — session state, exec-stats
// deltas, and digests all survive the kill exactly. Exits nonzero on any
// divergence, so tier1.sh can gate on it directly.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"
#include "telemetry/json.hpp"

namespace {

using morph::Status;
using morph::serve::Client;
using morph::serve::Server;
using morph::serve::ServerConfig;
using morph::telemetry::Json;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4595bull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

enum class FrameKind { kOpen, kUpdate, kClose };

struct Frame {
  FrameKind kind;
  std::string session;
  std::string session_kind;  ///< "mst" / "pta", open frames only
  std::uint64_t count = 0;   ///< node / variable count, open frames only
  Json updates;              ///< update frames only
  std::uint64_t id = 0;
  std::int64_t arrival = 0;
};

Json mst_row(std::int64_t op, std::int64_t u, std::int64_t v,
             std::int64_t w) {
  Json row = Json::array();
  row.push_back(Json(op));
  row.push_back(Json(u));
  row.push_back(Json(v));
  row.push_back(Json(w));
  return row;
}

Json pta_row(std::int64_t kind, std::int64_t dst, std::int64_t src) {
  Json row = Json::array();
  row.push_back(Json(kind));
  row.push_back(Json(dst));
  row.push_back(Json(src));
  return row;
}

/// The whole campaign replays one frame list; determinism of the stream is
/// what makes "byte-identical to the reference run" a meaningful gate.
std::vector<Frame> build_frames(std::uint64_t updates, std::uint64_t rows,
                                std::uint64_t nodes, std::uint64_t vars,
                                std::uint64_t seed) {
  std::vector<Frame> frames;
  std::int64_t arrival = 0;
  std::uint64_t id = 1;
  frames.push_back({FrameKind::kOpen, "m", "mst", nodes, Json(), id++,
                    arrival++});
  frames.push_back({FrameKind::kOpen, "p", "pta", vars, Json(), id++,
                    arrival++});

  std::uint64_t rng = seed;
  auto next = [&rng]() { return rng = splitmix64(rng); };
  // Live mst edges so deletes always target an existing edge and inserts
  // never duplicate one (both would be typed errors, not crash fodder).
  std::set<std::uint64_t> live_keys;
  std::vector<std::array<std::int64_t, 3>> live_edges;
  for (std::uint64_t b = 0; b < updates; ++b) {
    Frame f;
    f.kind = FrameKind::kUpdate;
    f.id = id++;
    f.arrival = arrival++;
    f.updates = Json::array();
    if (b % 2 == 0) {
      f.session = "m";
      for (std::uint64_t r = 0; r < rows; ++r) {
        const bool del = !live_edges.empty() && next() % 4 == 0;
        if (del) {
          const std::size_t at = next() % live_edges.size();
          const auto e = live_edges[at];
          live_edges.erase(live_edges.begin() + static_cast<long>(at));
          live_keys.erase(static_cast<std::uint64_t>(e[0]) * nodes +
                          static_cast<std::uint64_t>(e[1]));
          f.updates.push_back(mst_row(0, e[0], e[1], e[2]));
          continue;
        }
        std::int64_t u = 0, v = 0;
        std::uint64_t key = 0;
        do {
          u = static_cast<std::int64_t>(next() % nodes);
          v = static_cast<std::int64_t>(next() % nodes);
          if (u == v) v = (v + 1) % static_cast<std::int64_t>(nodes);
          const std::int64_t lo = u < v ? u : v;
          const std::int64_t hi = u < v ? v : u;
          key = static_cast<std::uint64_t>(lo) * nodes +
                static_cast<std::uint64_t>(hi);
          u = lo;
          v = hi;
        } while (live_keys.count(key) != 0);
        const std::int64_t w =
            1 + static_cast<std::int64_t>(next() % 1000000);
        live_keys.insert(key);
        live_edges.push_back({u, v, w});
        f.updates.push_back(mst_row(1, u, v, w));
      }
    } else {
      f.session = "p";
      for (std::uint64_t r = 0; r < rows; ++r) {
        const auto kind = static_cast<std::int64_t>(next() % 4);
        const auto dst = static_cast<std::int64_t>(next() % vars);
        const auto src = static_cast<std::int64_t>(next() % vars);
        f.updates.push_back(pta_row(kind, dst, src));
      }
    }
    frames.push_back(std::move(f));
  }
  frames.push_back(
      {FrameKind::kClose, "m", "", 0, Json(), id++, arrival++});
  frames.push_back(
      {FrameKind::kClose, "p", "", 0, Json(), id++, arrival++});
  return frames;
}

Status send_frame(Client& c, const Frame& f) {
  switch (f.kind) {
    case FrameKind::kOpen:
      return c.send_session_open(f.session, f.session_kind, f.count, f.id,
                                 f.arrival);
    case FrameKind::kUpdate:
      return c.send_session_update(f.session, f.updates, f.id, f.arrival);
    case FrameKind::kClose:
      return c.send_session_close(f.session, f.id, f.arrival);
  }
  return Status(morph::StatusCode::kBadRequest, "unreachable");
}

/// Forked server child, same shape as serve_loadtest's crash victim: no
/// destructor runs under SIGKILL, so the journal tail and socket file are
/// left exactly as a real crash leaves them.
pid_t spawn_server_process(const ServerConfig& scfg) {
  int ready[2];
  if (::pipe(ready) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(ready[0]);
    ::close(ready[1]);
    return -1;
  }
  if (pid == 0) {
    ::close(ready[0]);
    ::signal(SIGPIPE, SIG_IGN);
    {
      Server server(scfg);
      const Status s = server.start();
      if (!s.ok()) {
        std::cerr << "server child: " << s.to_string() << "\n";
        ::close(ready[1]);
        std::_Exit(1);
      }
      const char b = 1;
      [[maybe_unused]] const ssize_t w = ::write(ready[1], &b, 1);
      ::close(ready[1]);
      server.wait();
    }
    std::_Exit(0);
  }
  ::close(ready[1]);
  char b = 0;
  ssize_t r;
  while ((r = ::read(ready[0], &b, 1)) < 0 && errno == EINTR) {
  }
  ::close(ready[0]);
  if (r == 1) return pid;
  ::waitpid(pid, nullptr, 0);
  return -1;
}

struct RunResult {
  bool ok = false;
  std::map<std::uint64_t, std::string> replies;  ///< id -> reply dump
  std::int64_t recoveries = 0;
  std::int64_t recovered_sessions = 0;
  std::int64_t compactions = 0;
};

/// Streams the frames serially (send, wait for the reply, record it by id).
/// kill_after > 0 SIGKILLs the child after that many replies, restarts it
/// on the same journal, and replays the last answered frame first — the
/// parked reply must come back byte-identical before the stream continues.
RunResult run_campaign(const ServerConfig& cfg,
                       const std::vector<Frame>& frames,
                       std::uint64_t kill_after) {
  RunResult out;
  pid_t pid = spawn_server_process(cfg);
  if (pid < 0) {
    std::cerr << "error: failed to start server child\n";
    return out;
  }
  Client c;
  if (!c.connect(cfg.socket_path).ok()) {
    std::cerr << "error: connect failed\n";
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return out;
  }

  std::uint64_t replies = 0;
  bool killed = false;
  auto ask = [&](const Frame& f, std::string* dump) -> bool {
    if (!send_frame(c, f).ok()) return false;
    Json msg;
    if (!c.next_message(&msg).ok()) return false;
    if (msg.at("type").as_string() == "error") {
      std::cerr << "error reply for id " << f.id << ": " << msg.dump()
                << "\n";
      return false;
    }
    *dump = msg.dump();
    return true;
  };

  for (std::size_t i = 0; i < frames.size(); ++i) {
    std::string dump;
    if (!ask(frames[i], &dump)) {
      std::cerr << "error: frame id " << frames[i].id << " failed\n";
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return out;
    }
    out.replies[frames[i].id] = dump;
    ++replies;

    if (!killed && kill_after > 0 && replies >= kill_after) {
      killed = true;
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = spawn_server_process(cfg);
      if (pid < 0) {
        std::cerr << "error: recovery child failed to start\n";
        return out;
      }
      c.close();
      if (!c.connect(cfg.socket_path).ok()) {
        std::cerr << "error: reconnect after crash failed\n";
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return out;
      }
      // The already-answered frame, resent with its original stamp: the
      // recovered server must serve the parked replay reply byte for byte.
      std::string replay;
      if (!ask(frames[i], &replay) || replay != dump) {
        std::cerr << "error: replay reply diverged after crash (id "
                  << frames[i].id << ")\n  pre-crash: " << dump
                  << "\n  replayed:  " << replay << "\n";
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return out;
      }
    }
  }

  Json st;
  if (c.send_stats().ok() && c.next_message(&st).ok()) {
    out.recoveries = st.at("recoveries").as_int();
    out.recovered_sessions = st.at("recovered_sessions").as_int();
    if (const Json* k = st.find("compactions")) out.compactions = k->as_int();
  }
  (void)c.send_shutdown();
  Json bye;
  (void)c.next_message(&bye);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&]() -> int {
    morph::bench::Bench bench(
        argc, argv, "session_crash — session durability campaign",
        "incremental recompute sessions under SIGKILL (docs/SERVER.md)",
        {"updates", "rows", "nodes", "vars", "seed", "socket", "journal",
         "checkpoint-every"});
    auto& args = bench.args();
    const auto updates =
        static_cast<std::uint64_t>(args.get_positive_int("updates", 24));
    const auto rows =
        static_cast<std::uint64_t>(args.get_positive_int("rows", 8));
    const auto nodes =
        static_cast<std::uint64_t>(args.get_positive_int("nodes", 256));
    const auto vars =
        static_cast<std::uint64_t>(args.get_positive_int("vars", 128));
    const auto seed =
        static_cast<std::uint64_t>(args.get_positive_int("seed", 1));
    const std::string base = "/tmp/morph_session_crash_" +
                             std::to_string(::getpid());
    const std::string socket = args.get("socket", base + ".sock");
    const std::string journal = args.get("journal", base + ".wal");
    const auto checkpoint_every =
        static_cast<std::uint64_t>(args.get_int("checkpoint-every", 4));

    const std::vector<Frame> frames =
        build_frames(updates, rows, nodes, vars, seed);

    // Reference: the same stream, uninterrupted, with no journal at all —
    // durability machinery must not change a single reply byte.
    ServerConfig ref_cfg;
    ref_cfg.socket_path = socket + ".ref";
    const RunResult ref = run_campaign(ref_cfg, frames, /*kill_after=*/0);
    if (!ref.ok) {
      std::cerr << "FAIL: reference run failed\n";
      return 1;
    }

    // Kill points: right after the first open (recovery rebuilds a session
    // that never saw an update), mid-stream (checkpoints + journal tail),
    // and after the last update (recovery straddles the close frames).
    const std::uint64_t total = static_cast<std::uint64_t>(frames.size());
    const std::vector<std::uint64_t> kills = {1, total / 2, total - 2};

    bool ok = true;
    for (const std::uint64_t kill_after : kills) {
      ::unlink(journal.c_str());
      ServerConfig cfg;
      cfg.socket_path = socket;
      cfg.journal.path = journal;
      cfg.journal.checkpoint_every = checkpoint_every;
      const RunResult got = run_campaign(cfg, frames, kill_after);
      std::uint64_t divergent = 0;
      if (!got.ok) {
        ok = false;
        std::cerr << "FAIL: crash run (kill after " << kill_after
                  << " replies) did not complete\n";
      } else {
        for (const auto& [id, dump] : ref.replies) {
          auto it = got.replies.find(id);
          if (it == got.replies.end() || it->second != dump) {
            ++divergent;
            ok = false;
            std::cerr << "FAIL: reply for id " << id
                      << " diverged (kill after " << kill_after << ")\n";
          }
        }
        if (got.recoveries != 1) {
          ok = false;
          std::cerr << "FAIL: expected exactly 1 recovery, got "
                    << got.recoveries << " (kill after " << kill_after
                    << ")\n";
        }
      }
      std::cout << "kill after " << kill_after << " replies: "
                << (got.ok && divergent == 0 ? "byte-identical" : "DIVERGED")
                << " (" << ref.replies.size() << " replies, "
                << got.recovered_sessions << " sessions recovered, "
                << got.compactions << " compactions)\n";
      bench.add_row("kill_after_" + std::to_string(kill_after))
          .metric("replies", static_cast<double>(ref.replies.size()))
          .metric("divergent", static_cast<double>(divergent))
          .metric("recovered_sessions",
                  static_cast<double>(got.recovered_sessions))
          .metric("compactions", static_cast<double>(got.compactions));
    }
    ::unlink(journal.c_str());

    std::cout << (ok ? "PASS: every reply byte-identical across all kill "
                       "points\n"
                     : "FAIL: session crash campaign diverged\n");
    const int rc = bench.finish();
    return ok ? rc : (rc != 0 ? rc : 1);
  });
}
