// Figure 8 (table): effect of cumulative optimizations on DMR.
//
// Paper rows (10M-triangle mesh):
//   1 Topology-driven with mesh-partitioning  68,000 ms
//   2 3-phase marking                         10,000 ms
//   3 + atomic-free global barrier             6,360 ms
//   4 + optimized memory layout                5,380 ms
//   5 + adaptive parallelism                   2,200 ms
//   6 + reduced thread-divergence              2,020 ms
//   7 + single-precision arithmetic            1,020 ms
//   8 + on-demand memory allocation            1,140 ms (slightly slower,
//                                              but memory-safe)
// We run the same cumulative ladder on a scaled mesh and report modeled ms
// plus the per-variant conflict statistics.
#include "bench_common.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv, "Fig. 8 — DMR optimization ladder",
                     "each row adds one optimization; row 8 trades a little "
                     "time for on-demand allocation",
                     {"triangles", "scale"});
  const std::size_t n =
      static_cast<std::size_t>(bench.args().get_positive_int("triangles",
                                                             10000000)) /
      static_cast<std::size_t>(bench.args().get_positive_int("scale", 50));

  struct Row {
    const char* label;
    dmr::RefineOptions opts;
  };
  dmr::RefineOptions o;
  // Row 1: per-element locks, naive barrier, no layout/adaptive/sort/float,
  // prealloc.
  o.scheme = core::ConflictScheme::kLocks;
  o.barrier = gpu::BarrierKind::kNaiveAtomic;
  o.layout_opt = false;
  o.adaptive = false;
  o.divergence_sort = false;
  o.use_float = false;
  o.prealloc = true;
  std::vector<Row> rows;
  rows.push_back({"1 topology-driven + locks", o});
  o.scheme = core::ConflictScheme::kThreePhase;
  rows.push_back({"2 3-phase marking", o});
  o.barrier = gpu::BarrierKind::kLockFree;
  rows.push_back({"3 + atomic-free global barrier", o});
  o.layout_opt = true;
  rows.push_back({"4 + optimized memory layout", o});
  o.adaptive = true;
  rows.push_back({"5 + adaptive parallelism", o});
  o.divergence_sort = true;
  rows.push_back({"6 + reduced thread-divergence", o});
  o.use_float = true;
  rows.push_back({"7 + single-precision arithmetic", o});
  o.prealloc = false;
  rows.push_back({"8 + on-demand memory allocation", o});

  dmr::Mesh base = dmr::generate_input_mesh(n, 7);
  Table t({"variant", "model-ms", "wall-s", "rounds", "abort-ratio",
           "device MB allocated"});
  for (const Row& r : rows) {
    dmr::Mesh m = base;
    gpu::Device dev(bench.device_config());
    const dmr::RefineStats st = dmr::refine_gpu(m, dev, r.opts);
    MORPH_CHECK(m.compute_all_bad(30.0) == 0);
    t.add_row({r.label, bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
               Table::num(st.wall_seconds, 2), std::to_string(st.rounds),
               Table::num(st.abort_ratio(), 2),
               Table::num(dev.stats().bytes_allocated / 1.0e6, 1)});

    auto& rep = bench.add_row(r.label);
    bench.add_device_metrics(rep, dev);
    rep.metric("wall_seconds", st.wall_seconds)
        .metric("rounds", static_cast<double>(st.rounds))
        .metric("abort_ratio", st.abort_ratio());
  }
  t.print(std::cout);
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
