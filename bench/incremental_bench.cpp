// Incremental recompute sessions (ISSUE 10): batch updates against
// persistent MST / PTA state must (a) cost O(changes) — modeled cycles per
// batch scale with the batch, not with the accumulated input — and (b) land
// byte-identically on the from-scratch answer for the same final input,
// for every --host-workers count and worklist mode.
//
// Inputs are the clustered generators built for this workload
// (graph::gen_clustered / pta::clustered_program): updates stay inside
// aligned blocks, so the touched closure is proportional to the batch and
// the MSF edge key is collision-free (the precondition for digest-level
// identity; see mst/incremental.hpp). Default sizes put both inputs above
// 100k elements (~240k edges, 105k constraints); --scale=N divides them.
//
// The bench exits 1 if any identity or scaling gate fails, so tier-1 can
// run it as a correctness gate, not just a reporter.
#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mst/incremental.hpp"
#include "pta/constraints.hpp"
#include "pta/incremental.hpp"

namespace {

using namespace morph;
using graph::CsrGraph;
using graph::Edge;
using graph::Node;

/// The identity matrix: one device configuration per (host-workers,
/// worklist-mode) corner. Digests must agree across all of them.
std::vector<std::pair<std::string, gpu::DeviceConfig>> config_matrix(
    const gpu::DeviceConfig& base) {
  std::vector<std::pair<std::string, gpu::DeviceConfig>> out;
  for (const std::uint32_t hw : {1u, 4u}) {
    for (const gpu::WorklistMode wm :
         {gpu::WorklistMode::kCentralized, gpu::WorklistMode::kSharded}) {
      gpu::DeviceConfig cfg = base;
      cfg.host_workers = hw;
      cfg.worklist_mode = wm;
      const char* wname =
          wm == gpu::WorklistMode::kCentralized ? "centralized" : "sharded";
      out.emplace_back("hw" + std::to_string(hw) + "/" + wname, cfg);
    }
  }
  return out;
}

/// Per-batch-size cost of one contiguous segment of the update stream.
struct SweepPoint {
  std::size_t batch = 0;
  std::size_t updates = 0;
  double cycles = 0.0;
  double cycles_per_update() const {
    return updates == 0 ? 0.0 : cycles / static_cast<double>(updates);
  }
  /// Mean modeled cost of one batch at this size.
  double cycles_per_batch() const {
    return updates == 0
               ? 0.0
               : cycles * static_cast<double>(batch) /
                     static_cast<double>(updates);
  }
};

/// The two O(changes) gates over one sweep: (a) a small batch costs a small
/// fraction of the from-scratch solve — an update pays for its touched
/// region, not for the accumulated input; (b) cycles per update never grows
/// with the batch size — batching amortizes per-batch overhead, it never
/// penalizes. (Large batches legitimately approach the scratch cost: 256
/// updates touch a sizable share of the blocks.) `budget_frac` is the
/// fraction of the scratch solve a small batch may cost.
bool check_sweep(const char* what, const std::vector<SweepPoint>& sweep,
                 double scratch_cycles, double budget_frac) {
  bool ok = true;
  const SweepPoint& small = sweep.front();
  if (!(small.cycles_per_batch() < scratch_cycles * budget_frac)) {
    ok = false;
    std::cout << "FAIL: " << what << " batch=" << small.batch
              << " mean batch cost " << small.cycles_per_batch()
              << " cycles is not O(changes) (from-scratch solve: "
              << scratch_cycles << ")\n";
  }
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].cycles_per_update() >
        sweep.front().cycles_per_update() * 1.2) {
      ok = false;
      std::cout << "FAIL: " << what << " batch=" << sweep[i].batch
                << " costs more per update (" << sweep[i].cycles_per_update()
                << " cycles) than batch=" << sweep.front().batch << " ("
                << sweep.front().cycles_per_update()
                << "): batching does not amortize\n";
    }
  }
  return ok;
}

}  // namespace

int run_bench(int argc, char** argv) {
  bench::Bench bench(argc, argv, "Incremental recompute — update batches",
                     "ISSUE 10: O(changes) batches, byte-identical to "
                     "from-scratch (mst/pta incremental state)",
                     {"scale"});
  const auto scale =
      static_cast<std::uint32_t>(bench.args().get_positive_int("scale", 1));
  bool ok = true;

  // --- MST: edge insert stream over a clustered graph ----------------------
  // Small clusters keep the touched region per update ~one 64-node block:
  // the visible knob for "cost scales with changes, not with the graph".
  const Node mst_nodes = 120000u / scale;
  std::vector<Edge> all_edges =
      graph::gen_clustered(mst_nodes, 64, 4.0, 64, 7);
  // Hold out the tail as the live update stream; the rest is the base graph.
  const std::size_t tail = std::min<std::size_t>(768, all_edges.size() / 4);
  std::vector<Edge> base_edges(all_edges.begin(), all_edges.end() - tail);
  std::vector<Edge> held(all_edges.end() - tail, all_edges.end());
  std::vector<mst::EdgeUpdate> stream;
  stream.reserve(held.size());
  for (const Edge& e : held) stream.push_back({true, e.src, e.dst, e.weight});

  // Identity matrix: the same scripted run (base + batches of 64) on every
  // device corner must produce the same digest after every batch.
  std::vector<std::vector<std::uint64_t>> mst_digests;
  std::vector<std::string> corner_names;
  mst::MstState mst_final;
  for (const auto& [name, cfg] : config_matrix(bench.device_config())) {
    gpu::Device dev(cfg);
    mst::MstState st = mst::make_mst_state(mst_nodes, base_edges, dev);
    std::vector<std::uint64_t> digests = {mst::state_digest(st)};
    for (std::size_t off = 0; off < stream.size(); off += 64) {
      const std::size_t len = std::min<std::size_t>(64, stream.size() - off);
      mst::apply_updates(
          st, std::span<const mst::EdgeUpdate>(&stream[off], len), dev);
      digests.push_back(mst::state_digest(st));
    }
    corner_names.push_back(name);
    mst_digests.push_back(std::move(digests));
    mst_final = std::move(st);
  }
  bool mst_identical = true;
  for (std::size_t i = 1; i < mst_digests.size(); ++i) {
    if (mst_digests[i] != mst_digests[0]) {
      mst_identical = false;
      std::cout << "FAIL: MST digest stream diverges between "
                << corner_names[0] << " and " << corner_names[i] << "\n";
    }
  }

  // From-scratch re-solve of the final edge set: totals and the forest
  // itself must agree exactly.
  gpu::Device mst_scratch_dev(bench.device_config());
  const CsrGraph final_graph =
      CsrGraph::from_undirected_edges(mst_nodes, all_edges);
  const mst::MstResult mst_scratch = mst::mst_gpu(final_graph, mst_scratch_dev);
  auto scratch_pairs = mst_scratch.edges;
  for (auto& [u, v] : scratch_pairs) {
    if (u > v) std::swap(u, v);
  }
  std::sort(scratch_pairs.begin(), scratch_pairs.end());
  const bool mst_matches_scratch =
      mst_final.total_weight == mst_scratch.total_weight &&
      mst_final.tree_edges == mst_scratch.tree_edges &&
      mst_final.components == mst_scratch.components &&
      mst::forest_pairs(mst_final) == scratch_pairs;
  if (!mst_matches_scratch) {
    ok = false;
    std::cout << "FAIL: incremental MST forest differs from the from-scratch "
                 "solve of the final edge set\n";
  }
  ok = ok && mst_identical;

  // Batch sweep: one evolving state consumes equal thirds of the stream at
  // batch sizes 16 / 64 / 256. O(changes) shows up as a roughly flat
  // cycles-per-update column — and every segment far below the scratch
  // re-solve an update-oblivious server would pay.
  std::vector<SweepPoint> mst_sweep;
  {
    gpu::Device dev(bench.device_config());
    mst::MstState st = mst::make_mst_state(mst_nodes, base_edges, dev);
    const std::size_t seg = stream.size() / 3;
    std::size_t off = 0;
    for (const std::size_t bs : {std::size_t{16}, std::size_t{64},
                                 std::size_t{256}}) {
      SweepPoint pt;
      pt.batch = bs;
      const std::size_t end = off + seg;
      while (off < end) {
        const std::size_t len = std::min(bs, end - off);
        const mst::MstResult r = mst::apply_updates(
            st, std::span<const mst::EdgeUpdate>(&stream[off], len), dev);
        pt.cycles += r.modeled_cycles;
        pt.updates += len;
        off += len;
      }
      mst_sweep.push_back(pt);
    }
  }

  // The sharpest O(changes) statement: an update's bill depends on its
  // touched blocks, not on how big the rest of the graph is. Re-run the
  // batch=16 arm on a half-size instance; cycles per update must match.
  double half_cpu = 0.0;
  {
    const Node hn = std::max<Node>(1024, mst_nodes / 2);
    std::vector<Edge> h_all = graph::gen_clustered(hn, 64, 4.0, 64, 9);
    const std::size_t htail = std::min<std::size_t>(256, h_all.size() / 4);
    std::vector<Edge> h_base(h_all.begin(), h_all.end() - htail);
    gpu::Device dev(bench.device_config());
    mst::MstState st = mst::make_mst_state(hn, h_base, dev);
    double cycles = 0.0;
    for (std::size_t off = h_all.size() - htail; off < h_all.size();
         off += 16) {
      const std::size_t len = std::min<std::size_t>(16, h_all.size() - off);
      std::vector<mst::EdgeUpdate> b;
      for (std::size_t i = off; i < off + len; ++i) {
        b.push_back({true, h_all[i].src, h_all[i].dst, h_all[i].weight});
      }
      cycles += mst::apply_updates(st, b, dev).modeled_cycles;
    }
    half_cpu = cycles / static_cast<double>(htail);
  }
  if (mst_sweep.front().cycles_per_update() > half_cpu * 1.3) {
    ok = false;
    std::cout << "FAIL: MST cycles/update grew with the graph ("
              << mst_sweep.front().cycles_per_update() << " at " << mst_nodes
              << " nodes vs " << half_cpu
              << " at half size): not O(changes)\n";
  }

  ok = check_sweep("MST", mst_sweep, mst_scratch.modeled_cycles, 0.2) && ok;
  Table mt({"batch", "updates", "cycles/update", "Kcycles/batch mean",
            "batch vs scratch"});
  for (const SweepPoint& pt : mst_sweep) {
    mt.add_row({std::to_string(pt.batch), std::to_string(pt.updates),
                Table::num(pt.cycles_per_update(), 0),
                Table::num(pt.cycles_per_batch() / 1e3, 1),
                Table::num(100.0 * pt.cycles_per_batch() /
                               mst_scratch.modeled_cycles,
                           1) +
                    "%"});
    auto& row = bench.add_row("mst_batch_" + std::to_string(pt.batch));
    row.metric("modeled_cycles", pt.cycles)
        .metric("model_ms", bench.model_ms(pt.cycles))
        .metric("cycles_per_update", pt.cycles_per_update())
        .metric("updates", static_cast<double>(pt.updates));
  }
  bench.section("MST edge-insert batches",
                "cost per batch vs a " + std::to_string(all_edges.size()) +
                    "-edge from-scratch solve (" +
                    Table::num(mst_scratch.modeled_cycles / 1e6, 1) +
                    " Mcycles); digests " +
                    (mst_identical ? "identical" : "DIVERGED") +
                    " across " + std::to_string(mst_digests.size()) +
                    " device corners");
  mt.print(std::cout);

  // --- PTA: constraint stream over a block-local program -------------------
  const auto pta_vars = static_cast<std::uint32_t>(120000u / scale);
  const pta::ConstraintSet program =
      pta::clustered_program(pta_vars, 64, 56, 5);
  const std::size_t ptail = std::min<std::size_t>(
      768, program.constraints.size() / 4);
  const std::size_t pbase = program.constraints.size() - ptail;

  std::vector<std::vector<std::uint64_t>> pta_digests;
  for (const auto& [name, cfg] : config_matrix(bench.device_config())) {
    (void)name;
    gpu::Device dev(cfg);
    pta::PtaState st = pta::make_pta_state(program.num_vars);
    pta::apply_updates(
        st, std::span<const pta::Constraint>(program.constraints.data(),
                                             pbase),
        dev);
    std::vector<std::uint64_t> digests = {pta::state_digest(st)};
    for (std::size_t off = pbase; off < program.constraints.size();
         off += 64) {
      const std::size_t len =
          std::min<std::size_t>(64, program.constraints.size() - off);
      pta::apply_updates(
          st, std::span<const pta::Constraint>(&program.constraints[off],
                                               len),
          dev);
      digests.push_back(pta::state_digest(st));
    }
    pta_digests.push_back(std::move(digests));
  }
  bool pta_identical = true;
  for (std::size_t i = 1; i < pta_digests.size(); ++i) {
    if (pta_digests[i] != pta_digests[0]) {
      pta_identical = false;
      std::cout << "FAIL: PTA digest stream diverges between "
                << corner_names[0] << " and " << corner_names[i] << "\n";
    }
  }
  ok = ok && pta_identical;

  // From-scratch fixed point of the whole program, for the O(changes) bar.
  gpu::Device pta_scratch_dev(bench.device_config());
  pta::PtaStats pta_scratch;
  (void)pta::solve_gpu(program, pta_scratch_dev, {}, &pta_scratch);

  std::vector<SweepPoint> pta_sweep;
  {
    gpu::Device dev(bench.device_config());
    pta::PtaState st = pta::make_pta_state(program.num_vars);
    pta::apply_updates(
        st, std::span<const pta::Constraint>(program.constraints.data(),
                                             pbase),
        dev);
    const std::size_t seg = ptail / 3;
    std::size_t off = pbase;
    for (const std::size_t bs : {std::size_t{16}, std::size_t{64},
                                 std::size_t{256}}) {
      SweepPoint pt;
      pt.batch = bs;
      const std::size_t end = off + seg;
      while (off < end) {
        const std::size_t len = std::min(bs, end - off);
        const pta::PtaDelta d = pta::apply_updates(
            st, std::span<const pta::Constraint>(&program.constraints[off],
                                                 len),
            dev);
        pt.cycles += d.modeled_cycles;
        pt.updates += len;
        off += len;
      }
      pta_sweep.push_back(pt);
    }
  }

  ok = check_sweep("PTA", pta_sweep, pta_scratch.modeled_cycles, 0.1) && ok;
  Table ptt({"batch", "updates", "cycles/update", "Kcycles/batch mean",
             "batch vs scratch"});
  for (const SweepPoint& pt : pta_sweep) {
    ptt.add_row({std::to_string(pt.batch), std::to_string(pt.updates),
                 Table::num(pt.cycles_per_update(), 0),
                 Table::num(pt.cycles_per_batch() / 1e3, 1),
                 Table::num(100.0 * pt.cycles_per_batch() /
                                pta_scratch.modeled_cycles,
                            1) +
                     "%"});
    auto& row = bench.add_row("pta_batch_" + std::to_string(pt.batch));
    row.metric("modeled_cycles", pt.cycles)
        .metric("model_ms", bench.model_ms(pt.cycles))
        .metric("cycles_per_update", pt.cycles_per_update())
        .metric("updates", static_cast<double>(pt.updates));
  }
  bench.section("PTA constraint batches",
                "cost per batch vs the " +
                    std::to_string(program.constraints.size()) +
                    "-constraint from-scratch solve (" +
                    Table::num(pta_scratch.modeled_cycles / 1e6, 1) +
                    " Mcycles); digests " +
                    (pta_identical ? "identical" : "DIVERGED") +
                    " across " + std::to_string(pta_digests.size()) +
                    " device corners");
  ptt.print(std::cout);

  std::cout << "\n"
            << (ok ? "PASS: all identity and O(changes) gates hold"
                   : "FAIL: see messages above")
            << "\n";
  const int rc = bench.finish();
  return ok ? rc : (rc != 0 ? rc : 1);
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
