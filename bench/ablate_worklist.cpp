// Ablation (Sec. 2 / 7.5): topology-driven local worklists vs a
// data-driven centralized worklist for DMR.
//
// The paper: "a data-driven approach requires maintenance of a worklist
// that is accessed by all threads. A naive implementation of such a
// worklist severely limits performance because work elements must be added
// and removed atomically." This bench runs both drivers on the same mesh
// and reports the atomics bill and modeled time.
#include "bench_common.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"

int main(int argc, char** argv) {
  using namespace morph;
  CliArgs args(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(args.get_int("triangles", 50000));
  dmr::Mesh base = dmr::generate_input_mesh(n, 27);

  bench::header("Ablation — topology-driven vs data-driven DMR (Sec. 7.5)",
                "the centralized worklist pays an atomic per push/pop");

  Table t({"driver", "model-ms", "rounds", "processed", "abort-ratio",
           "atomics x1e3", "bad after"});
  {
    dmr::Mesh m = base;
    gpu::Device dev(bench::device_config(args));
    const dmr::RefineStats st = dmr::refine_gpu(m, dev);
    t.add_row({"topology-driven (local chunks)",
               bench::fmt_ms(bench::model_ms(st.modeled_cycles)),
               std::to_string(st.rounds), std::to_string(st.processed),
               Table::num(st.abort_ratio(), 2),
               Table::num(dev.stats().atomics / 1e3, 1),
               std::to_string(m.compute_all_bad(30.0))});
  }
  {
    dmr::Mesh m = base;
    gpu::Device dev(bench::device_config(args));
    const dmr::RefineStats st = dmr::refine_gpu_datadriven(m, dev);
    t.add_row({"data-driven (central worklist)",
               bench::fmt_ms(bench::model_ms(st.modeled_cycles)),
               std::to_string(st.rounds), std::to_string(st.processed),
               Table::num(st.abort_ratio(), 2),
               Table::num(dev.stats().atomics / 1e3, 1),
               std::to_string(m.compute_all_bad(30.0))});
  }
  t.print(std::cout);
  return 0;
}
