// Ablation (Sec. 2 / 7.5): topology-driven local worklists vs a
// data-driven centralized worklist for DMR.
//
// The paper: "a data-driven approach requires maintenance of a worklist
// that is accessed by all threads. A naive implementation of such a
// worklist severely limits performance because work elements must be added
// and removed atomically." This bench runs both drivers on the same mesh
// and reports the atomics bill and modeled time. A third arm reruns the
// data-driven driver with --worklist-mode=sharded forced on, so the
// centralized-vs-sharded contention split (wl-contended ops vs local ring
// ops) is visible in one report whatever mode the harness was given.
#include "bench_common.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(
      argc, argv,
      "Ablation — topology-driven vs data-driven DMR (Sec. 7.5)",
      "the centralized worklist pays an atomic per push/pop", {"triangles"});
  const std::size_t n = static_cast<std::size_t>(
      bench.args().get_positive_int("triangles", 50000));
  dmr::Mesh base = dmr::generate_input_mesh(n, 27);

  Table t({"driver", "model-ms", "rounds", "processed", "abort-ratio",
           "atomics x1e3", "wl-contended x1e3", "steals", "bad after"});
  {
    dmr::Mesh m = base;
    gpu::Device dev(bench.device_config());
    const dmr::RefineStats st = dmr::refine_gpu(m, dev);
    const std::size_t bad_after = m.compute_all_bad(30.0);
    t.add_row({"topology-driven (local chunks)",
               bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
               std::to_string(st.rounds), std::to_string(st.processed),
               Table::num(st.abort_ratio(), 2),
               Table::num(dev.stats().atomics / 1e3, 1),
               Table::num(dev.stats().wl_contended_ops / 1e3, 1),
               std::to_string(dev.stats().wl_steals),
               std::to_string(bad_after)});
    auto& rep = bench.add_row("topology-driven");
    bench.add_device_metrics(rep, dev);
    rep.metric("rounds", static_cast<double>(st.rounds))
        .metric("processed", static_cast<double>(st.processed))
        .metric("abort_ratio", st.abort_ratio())
        .metric("bad_after", static_cast<double>(bad_after));
  }
  {
    dmr::Mesh m = base;
    gpu::DeviceConfig cfg = bench.device_config();
    cfg.worklist_mode = gpu::WorklistMode::kCentralized;
    gpu::Device dev(cfg);
    const dmr::RefineStats st = dmr::refine_gpu_datadriven(m, dev);
    const std::size_t bad_after = m.compute_all_bad(30.0);
    t.add_row({"data-driven (central worklist)",
               bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
               std::to_string(st.rounds), std::to_string(st.processed),
               Table::num(st.abort_ratio(), 2),
               Table::num(dev.stats().atomics / 1e3, 1),
               Table::num(dev.stats().wl_contended_ops / 1e3, 1),
               std::to_string(dev.stats().wl_steals),
               std::to_string(bad_after)});
    auto& rep = bench.add_row("data-driven");
    bench.add_device_metrics(rep, dev);
    rep.metric("rounds", static_cast<double>(st.rounds))
        .metric("processed", static_cast<double>(st.processed))
        .metric("abort_ratio", st.abort_ratio())
        .metric("bad_after", static_cast<double>(bad_after));
  }
  {
    dmr::Mesh m = base;
    gpu::DeviceConfig cfg = bench.device_config();
    cfg.worklist_mode = gpu::WorklistMode::kSharded;
    gpu::Device dev(cfg);
    const dmr::RefineStats st = dmr::refine_gpu_datadriven(m, dev);
    const std::size_t bad_after = m.compute_all_bad(30.0);
    t.add_row({"data-driven (sharded worklist)",
               bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
               std::to_string(st.rounds), std::to_string(st.processed),
               Table::num(st.abort_ratio(), 2),
               Table::num(dev.stats().atomics / 1e3, 1),
               Table::num(dev.stats().wl_contended_ops / 1e3, 1),
               std::to_string(dev.stats().wl_steals),
               std::to_string(bad_after)});
    auto& rep = bench.add_row("data-driven-sharded");
    bench.add_device_metrics(rep, dev);
    rep.metric("rounds", static_cast<double>(st.rounds))
        .metric("processed", static_cast<double>(st.processed))
        .metric("abort_ratio", st.abort_ratio())
        .metric("bad_after", static_cast<double>(bad_after));
  }
  t.print(std::cout);
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
