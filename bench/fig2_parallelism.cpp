// Figure 2: parallelism profile of Delaunay Mesh Refinement.
//
// The paper ran ParaMeter on a 100K-triangle mesh with half the triangles
// bad and reported the number of bad triangles that can be processed in
// parallel at each computation step: ~5,000 initially, peaking above 7,000,
// then decaying. We measure the same quantity — a greedy maximal set of
// non-overlapping cavities per round — on a (scaled) random input mesh.
#include <vector>

#include "bench_common.hpp"
#include "dmr/cavity.hpp"
#include "dmr/delaunay.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv, "Fig. 2 — DMR parallelism profile",
                     "available parallelism rises to a peak, then decays",
                     {"triangles", "scale"});
  const std::size_t triangles =
      static_cast<std::size_t>(bench.args().get_positive_int("triangles",
                                                             100000)) /
      static_cast<std::size_t>(bench.args().get_positive_int("scale", 4));

  dmr::Mesh m = dmr::generate_input_mesh(triangles, 42);
  m.compute_all_bad(30.0);
  const double cb = dmr::cos_of_deg(30.0);

  Table t({"step", "available parallelism (independent cavities)"});
  std::size_t peak = 0, first = 0;
  for (int round = 0;; ++round) {
    std::vector<dmr::Tri> bad;
    for (dmr::Tri x = 0; x < m.num_slots(); ++x) {
      if (!m.is_deleted(x) && m.is_bad(x)) bad.push_back(x);
    }
    if (bad.empty()) break;
    std::vector<std::uint8_t> taken(m.num_slots() * 16, 0);
    std::size_t applied = 0;
    for (dmr::Tri x : bad) {
      if (m.is_deleted(x) || !m.is_bad(x)) continue;
      dmr::Cavity c = dmr::build_refinement_cavity(m, x);
      const auto hood = c.neighborhood(m);
      bool free = true;
      for (dmr::Tri h : hood) {
        if (h < taken.size() && taken[h]) free = false;
      }
      if (!free) continue;
      for (dmr::Tri h : hood) {
        if (h < taken.size()) taken[h] = 1;
      }
      dmr::retriangulate(m, c, cb);
      ++applied;
    }
    if (round == 0) first = applied;
    peak = std::max(peak, applied);
    t.add_row({std::to_string(round), std::to_string(applied)});
    bench.add_row("step " + std::to_string(round))
        .metric("parallelism", static_cast<double>(applied));
  }
  t.print(std::cout);
  std::cout << "\ninitial=" << first << " peak=" << peak
            << "  (paper: ~5,000 initial, >7,000 peak on 100K triangles; "
               "shape: rise then decay)\n";
  bench.add_row("summary")
      .metric("initial", static_cast<double>(first))
      .metric("peak", static_cast<double>(peak));
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
