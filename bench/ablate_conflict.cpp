// Ablation (Sec. 7.3): conflict-resolution schemes on DMR.
//
// Compares per-element locking (mutual exclusion via atomics), the 2-phase
// race-and-check, the racy 2-phase race-and-prioritycheck, and the correct
// 3-phase protocol, on the same input: modeled time, abort ratio, and the
// atomics bill. Also sweeps the three global-barrier flavours.
#include "bench_common.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv,
                     "Ablation — conflict resolution schemes (Sec. 7.3)",
                     "locks pay atomics; 3-phase is safe and cheap",
                     {"triangles", "scale"});
  const std::size_t n =
      static_cast<std::size_t>(bench.args().get_positive_int("triangles",
                                                             50000)) /
      static_cast<std::size_t>(bench.args().get_positive_int("scale", 1));
  dmr::Mesh base = dmr::generate_input_mesh(n, 21);

  {
    Table t({"scheme", "model-ms", "rounds", "processed", "aborted",
             "abort-ratio", "atomics x1e3"});
    struct S {
      const char* name;
      core::ConflictScheme scheme;
    };
    const S schemes[] = {
        {"per-element locks", core::ConflictScheme::kLocks},
        {"2-phase race+check", core::ConflictScheme::kTwoPhaseRaceCheck},
        {"2-phase race+prioritycheck", core::ConflictScheme::kTwoPhasePriority},
        {"3-phase (paper)", core::ConflictScheme::kThreePhase},
    };
    for (const S& s : schemes) {
      dmr::Mesh m = base;
      gpu::Device dev(bench.device_config());
      dmr::RefineOptions opts;
      opts.scheme = s.scheme;
      const dmr::RefineStats st = dmr::refine_gpu(m, dev, opts);
      MORPH_CHECK(m.compute_all_bad(30.0) == 0);
      t.add_row({s.name, bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
                 std::to_string(st.rounds), std::to_string(st.processed),
                 std::to_string(st.aborted), Table::num(st.abort_ratio(), 2),
                 Table::num(dev.stats().atomics / 1e3, 1)});

      auto& rep = bench.add_row(std::string("scheme/") + s.name);
      bench.add_device_metrics(rep, dev);
      rep.metric("rounds", static_cast<double>(st.rounds))
          .metric("processed", static_cast<double>(st.processed))
          .metric("aborted", static_cast<double>(st.aborted))
          .metric("abort_ratio", st.abort_ratio());
    }
    t.print(std::cout);
  }

  bench.section("Ablation — global barrier flavours (Sec. 7.3)",
                "naive atomic barrier loses badly at high thread counts");
  {
    Table t({"barrier", "model-ms", "barriers crossed"});
    struct B {
      const char* name;
      gpu::BarrierKind kind;
    };
    const B kinds[] = {
        {"naive atomic", gpu::BarrierKind::kNaiveAtomic},
        {"hierarchical", gpu::BarrierKind::kHierarchical},
        {"lock-free (Xiao-Feng + fences)", gpu::BarrierKind::kLockFree},
    };
    for (const B& b : kinds) {
      dmr::Mesh m = base;
      gpu::Device dev(bench.device_config());
      dmr::RefineOptions opts;
      opts.barrier = b.kind;
      dmr::refine_gpu(m, dev, opts);
      t.add_row({b.name,
                 bench.fmt_ms(bench.model_ms(dev.stats().modeled_cycles)),
                 std::to_string(dev.stats().barriers)});

      bench.add_device_metrics(
          bench.add_row(std::string("barrier/") + b.name), dev);
    }
    t.print(std::cout);
  }
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
