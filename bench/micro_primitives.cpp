// Google-benchmark microbenchmarks of the building blocks: conflict
// marking, worklists, device-heap chunk allocation, cavity construction,
// and survey updates. These measure real wall time of the host
// implementations (not modeled cycles) and guard against regressions.
#include <benchmark/benchmark.h>

#include "core/conflict.hpp"
#include "dmr/cavity.hpp"
#include "dmr/delaunay.hpp"
#include "gpu/memory.hpp"
#include "gpu/worklist.hpp"
#include "sp/survey.hpp"

namespace {

using namespace morph;

void BM_MarkTableThreePhase(benchmark::State& state) {
  const std::size_t elems = 1 << 16;
  core::MarkTable marks(elems);
  gpu::ThreadCtx ctx;
  Rng rng(1);
  std::vector<std::vector<std::uint32_t>> hoods(256);
  for (auto& h : hoods) {
    for (int i = 0; i < 8; ++i)
      h.push_back(static_cast<std::uint32_t>(rng.next_below(elems)));
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
  }
  for (auto _ : state) {
    marks.reset();
    for (std::uint32_t t = 0; t < hoods.size(); ++t)
      marks.race_mark(ctx, t, hoods[t]);
    std::uint32_t winners = 0;
    for (std::uint32_t t = 0; t < hoods.size(); ++t)
      winners += marks.priority_check(ctx, t, hoods[t]) &&
                 marks.final_check(ctx, t, hoods[t]);
    benchmark::DoNotOptimize(winners);
  }
}
BENCHMARK(BM_MarkTableThreePhase);

void BM_MarkTableLocks(benchmark::State& state) {
  const std::size_t elems = 1 << 16;
  core::MarkTable marks(elems);
  gpu::ThreadCtx ctx;
  Rng rng(1);
  std::vector<std::vector<std::uint32_t>> hoods(256);
  for (auto& h : hoods) {
    for (int i = 0; i < 8; ++i)
      h.push_back(static_cast<std::uint32_t>(rng.next_below(elems)));
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
  }
  for (auto _ : state) {
    marks.reset();
    std::uint32_t winners = 0;
    for (std::uint32_t t = 0; t < hoods.size(); ++t)
      winners += marks.try_claim(ctx, t, hoods[t]);
    benchmark::DoNotOptimize(winners);
  }
}
BENCHMARK(BM_MarkTableLocks);

void BM_LocalWorklist(benchmark::State& state) {
  gpu::LocalWorklist<std::uint32_t> wl(1024);
  for (auto _ : state) {
    wl.clear();
    for (std::uint32_t i = 0; i < 1024; ++i) wl.push(i);
    std::uint64_t sum = 0;
    while (auto v = wl.pop()) sum += *v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_LocalWorklist);

void BM_GlobalWorklist(benchmark::State& state) {
  gpu::Device dev;
  gpu::GlobalWorklist<std::uint32_t> wl(1 << 16);
  gpu::ThreadCtx ctx;
  for (auto _ : state) {
    wl.reset();
    for (std::uint32_t i = 0; i < 1024; ++i) wl.push(ctx, i);
    std::uint64_t sum = 0;
    while (auto v = wl.pop(ctx)) sum += *v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GlobalWorklist);

void BM_DeviceHeapChunkCycle(benchmark::State& state) {
  gpu::Device dev;
  gpu::DeviceHeap<std::uint32_t> heap(dev,
                                      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto a = heap.alloc_chunk();
    auto b = heap.alloc_chunk();
    heap.free_chunk(a);
    heap.free_chunk(b);
  }
}
BENCHMARK(BM_DeviceHeapChunkCycle)->Arg(512)->Arg(4096);

void BM_CavityBuild(benchmark::State& state) {
  dmr::Mesh m = dmr::generate_input_mesh(20000, 3);
  m.compute_all_bad(30.0);
  std::vector<dmr::Tri> bad;
  for (dmr::Tri t = 0; t < m.num_slots(); ++t) {
    if (!m.is_deleted(t) && m.is_bad(t)) bad.push_back(t);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const dmr::Cavity c =
        dmr::build_refinement_cavity(m, bad[i++ % bad.size()]);
    benchmark::DoNotOptimize(c.tris.size());
  }
}
BENCHMARK(BM_CavityBuild);

void BM_SurveySweep(benchmark::State& state) {
  const std::uint32_t n = 2000;
  auto f = sp::random_ksat(n, static_cast<std::uint32_t>(4.2 * n), 3, 5);
  sp::FactorGraph g(f);
  Rng rng(1);
  g.init_surveys(rng);
  const bool cached = state.range(0) != 0;
  sp::SurveyCache cache;
  cache.pos.assign(n, 1.0);
  cache.neg.assign(n, 1.0);
  for (auto _ : state) {
    if (cached) {
      for (sp::Lit i = 0; i < n; ++i) sp::refresh_cache_lit(g, i, cache);
    }
    double maxd = 0.0;
    for (sp::Clause c = 0; c < f.num_clauses(); ++c) {
      maxd = std::max(
          maxd, sp::update_clause(g, c, cached ? &cache : nullptr, nullptr));
    }
    benchmark::DoNotOptimize(maxd);
  }
}
BENCHMARK(BM_SurveySweep)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
