// Load test for the morph job server (docs/SERVER.md).
//
//   serve_loadtest [--jobs=1000] [--clients=4] [--seed=1]
//                  [--pool=2] [--workers=0] [--batch-max=8]
//                  [--batch-linger=16] [--queue-cap=CYCLES]
//                  [--max-job-cycles=CYCLES] [--small-job=CYCLES]
//                  [--dispatch-cycles=C] [--default-gap=CYCLES]
//                  [--fault-every=16] [--fault-spec=launch@1x64]
//                  [--deadline-every=0] [--deadline-ms=MS]
//                  [--jobs-json=PATH] [--json=REPORT]
//                  [--connect=SOCKET | --oneshot] [--socket=PATH]
//                  [--journal=PATH] [--crash-after=N]
//                  [--shutdown]
//
// Three modes sharing one deterministic job list:
//   * embedded (default): starts a Server in-process on --socket and drives
//     it through --clients real client connections;
//   * --connect=SOCKET: drives an external morph-served daemon;
//   * --oneshot: no server — replays the same admission decisions through a
//     local Scheduler and runs accepted jobs directly on the executor.
//
// --jobs-json writes the canonical per-job artifact (sorted by job id,
// pool-independent fields only); tier1.sh byte-compares it between served
// and oneshot runs, and between different pool sizes / host workers. Every
// --fault-every'th job carries --fault-spec, a campaign that exhausts the
// launch-retry ladder: the job must fail alone with a typed status while
// its cohort (jobs with the identical spec) completes byte-identically —
// any cohort divergence is counted as a pool poisoning and fails the run
// (exit 5). --deadline-every=K stamps every Kth job with a
// deadline_model_ms deadline (--deadline-ms); deadline rejects are typed
// and land in the artifact like any other reject.
//
// Crash campaign (--crash-after=N, requires --journal, embedded only): the
// server runs in a forked child with a write-ahead journal; after N replies
// the child is SIGKILLed mid-flight, a recovery child is started against
// the same journal, the clients reconnect and resubmit every unanswered job
// with its original arrival stamp, and the merged artifact must be
// byte-identical to an uninterrupted run (docs/SERVER.md, "Durability &
// operations").
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/executor.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"

namespace {

using morph::Status;
using morph::StatusCode;
using morph::serve::Client;
using morph::serve::JobKind;
using morph::serve::JobOutcome;
using morph::serve::JobRequest;
using morph::serve::JobSpec;
using morph::serve::Scheduler;
using morph::serve::SchedulerConfig;
using morph::serve::Server;
using morph::serve::ServerConfig;
using morph::telemetry::Json;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4595bull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The deterministic job list. Specs cycle through a small table so each
/// distinct spec recurs many times — those replay cohorts are what the
/// poisoning check compares. Priorities vary per job (they influence
/// scheduling, never results).
std::vector<JobRequest> make_jobs(std::uint64_t jobs, std::uint64_t seed,
                                  std::uint64_t fault_every,
                                  const std::string& fault_spec,
                                  std::uint64_t deadline_every,
                                  double deadline_ms) {
  struct SpecSeed {
    JobKind kind;
    std::uint64_t size;
    std::uint32_t sweeps, phases;
    bool validate;
  };
  static const SpecSeed kTable[] = {
      {JobKind::kDmr, 60, 0, 0, false},  {JobKind::kSp, 40, 4, 1, false},
      {JobKind::kPta, 60, 0, 0, true},   {JobKind::kMst, 120, 0, 0, false},
      {JobKind::kDmr, 90, 0, 0, true},   {JobKind::kSp, 60, 4, 1, true},
      {JobKind::kPta, 100, 0, 0, false}, {JobKind::kMst, 200, 0, 0, true},
      {JobKind::kDmr, 140, 0, 0, false}, {JobKind::kSp, 80, 3, 1, false},
      {JobKind::kPta, 140, 0, 0, false}, {JobKind::kMst, 300, 0, 0, false},
  };
  constexpr std::size_t kSpecs = sizeof(kTable) / sizeof(kTable[0]);

  std::vector<JobRequest> out;
  out.reserve(jobs);
  for (std::uint64_t i = 0; i < jobs; ++i) {
    const SpecSeed& t = kTable[i % kSpecs];
    JobRequest r;
    r.id = i;
    r.priority = static_cast<std::uint32_t>(splitmix64(seed ^ i) % 8);
    r.spec.kind = t.kind;
    r.spec.size = t.size;
    if (t.sweeps != 0) r.spec.sweeps = t.sweeps;
    if (t.phases != 0) r.spec.phases = t.phases;
    r.spec.seed = seed + i % kSpecs;  // cohort-stable: same spec, same seed
    r.spec.validate = t.validate;
    if (fault_every != 0 && i % fault_every == fault_every - 1) {
      r.faults = fault_spec;
      r.fault_seed = seed + i;
    }
    if (deadline_every != 0 && i % deadline_every == deadline_every - 1) {
      r.spec.deadline_model_ms = deadline_ms;
    }
    out.push_back(std::move(r));
  }
  return out;
}

/// One per-job record of the canonical artifact. Only pool-independent
/// fields: results and exec stats are a pure function of (spec, device
/// config); rejects are a pure function of the arrival order.
Json job_entry(const JobRequest& req, const std::string& status_name,
               const std::string& message, const Json* outputs,
               const Json* exec) {
  Json e = Json::object();
  e.set("id", req.id);
  e.set("kind", morph::serve::job_kind_name(req.spec.kind));
  e.set("params", req.spec.to_json());
  if (!req.faults.empty()) e.set("faults", req.faults);
  e.set("status", status_name);
  if (!message.empty()) e.set("message", message);
  if (outputs != nullptr) e.set("outputs", *outputs);
  if (exec != nullptr) e.set("exec", *exec);
  return e;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size()) + 0.999999);
  return v[std::min(rank == 0 ? 0 : rank - 1, v.size() - 1)];
}

struct Tally {
  std::vector<Json> entries;        ///< by job id
  std::vector<double> queue_cycles; ///< completed jobs only (served mode)
  std::set<std::uint64_t> batches;
  double makespan_cycles = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t failed_typed = 0;
  std::uint64_t rejected = 0;
};

/// Runs a Server in a forked child (the crash campaign's victim): the child
/// serves until a client shutdown or a signal; the parent returns once the
/// child's socket is listening. SIGKILLing the child is the whole point —
/// no destructor runs, the socket file and the journal tail are left
/// exactly as a real crash leaves them. Returns -1 on failure.
pid_t spawn_server_process(const ServerConfig& scfg) {
  int ready[2];
  if (::pipe(ready) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(ready[0]);
    ::close(ready[1]);
    return -1;
  }
  if (pid == 0) {
    ::close(ready[0]);
    ::signal(SIGPIPE, SIG_IGN);
    {
      Server server(scfg);
      const Status s = server.start();
      if (!s.ok()) {
        std::cerr << "server child: " << s.to_string() << "\n";
        ::close(ready[1]);
        std::_Exit(1);
      }
      const char b = 1;
      [[maybe_unused]] const ssize_t w = ::write(ready[1], &b, 1);
      ::close(ready[1]);
      server.wait();
    }
    std::_Exit(0);  // clean path: Server destructor already ran
  }
  ::close(ready[1]);
  char b = 0;
  ssize_t r;
  while ((r = ::read(ready[0], &b, 1)) < 0 && errno == EINTR) {
  }
  ::close(ready[0]);
  if (r == 1) return pid;
  ::waitpid(pid, nullptr, 0);
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&]() -> int {
    morph::bench::Bench bench(
        argc, argv, "serve_loadtest — job-server load test",
        "morph-as-a-service serving layer (docs/SERVER.md)",
        {"jobs", "clients", "seed", "pool", "workers", "batch-max",
         "batch-linger", "queue-cap", "max-job-cycles", "small-job",
         "dispatch-cycles", "default-gap", "fault-every", "fault-spec",
         "deadline-every", "deadline-ms", "jobs-json", "connect", "oneshot",
         "socket", "journal", "crash-after", "shutdown"});
    auto& args = bench.args();

    const auto jobs_n =
        static_cast<std::uint64_t>(args.get_positive_int("jobs", 1000));
    const auto clients_n =
        static_cast<std::uint64_t>(args.get_positive_int("clients", 4));
    const auto seed =
        static_cast<std::uint64_t>(args.get_positive_int("seed", 1));
    const auto fault_every =
        static_cast<std::uint64_t>(args.get_int("fault-every", 16));
    const std::string fault_spec =
        args.get("fault-spec", "launch@1x64");
    const auto deadline_every =
        static_cast<std::uint64_t>(args.get_int("deadline-every", 0));
    const double deadline_ms = args.get_double("deadline-ms", 50.0);
    const bool oneshot = args.get_bool("oneshot", false);
    const std::string connect_path = args.get("connect", "");
    const std::string journal_path = args.get("journal", "");
    const auto crash_after =
        static_cast<std::uint64_t>(args.get_int("crash-after", 0));
    if (crash_after > 0 && (oneshot || !connect_path.empty())) {
      std::cerr << "error: --crash-after needs the embedded server mode\n";
      return 2;
    }
    if (crash_after > 0 && journal_path.empty()) {
      std::cerr << "error: --crash-after needs --journal (nothing would "
                   "survive the kill)\n";
      return 2;
    }

    SchedulerConfig sched;
    sched.pool = static_cast<std::uint32_t>(args.get_positive_int("pool", 2));
    sched.batch_max =
        static_cast<std::uint32_t>(args.get_positive_int("batch-max", 8));
    sched.batch_linger = static_cast<std::uint64_t>(
        args.get_int("batch-linger", static_cast<std::int64_t>(
                                         sched.batch_linger)));
    sched.queue_cap_cycles = args.get_double("queue-cap", sched.queue_cap_cycles);
    sched.max_job_cycles =
        args.get_double("max-job-cycles", sched.max_job_cycles);
    sched.small_job_cycles = args.get_double("small-job", sched.small_job_cycles);
    sched.dispatch_cycles =
        args.get_double("dispatch-cycles", sched.dispatch_cycles);
    sched.default_gap_cycles =
        args.get_double("default-gap", sched.default_gap_cycles);

    const std::vector<JobRequest> jobs = make_jobs(
        jobs_n, seed, fault_every, fault_spec, deadline_every, deadline_ms);
    Tally tally;
    tally.entries.resize(jobs.size());
    // Durability counters scraped from the server's stats frame (zero in
    // oneshot mode, which has no server to crash).
    double stat_recoveries = 0.0, stat_recovered_jobs = 0.0;
    double stat_deadline_exceeded = 0.0, stat_cancelled = 0.0;
    double stat_quarantined = 0.0;

    const auto t0 = std::chrono::steady_clock::now();

    if (oneshot) {
      // Replay the (pool-independent) admission decisions, then run the
      // admitted jobs directly — the reference the served runs must match.
      Scheduler admission(sched);
      for (const JobRequest& req : jobs) {
        // Same ms -> cycles deadline conversion the server applies.
        const double deadline_cycles =
            req.spec.deadline_model_ms > 0.0
                ? req.spec.deadline_model_ms *
                      bench.device_config().clock_ghz * 1e6
                : 0.0;
        const auto sub = admission.submit(
            req.spec.kind, req.priority,
            morph::serve::estimate_job_cycles(req.spec), -1.0,
            deadline_cycles);
        if (!sub.accepted) {
          ++tally.rejected;
          tally.entries[req.id] =
              job_entry(req, morph::status_code_name(sub.reject.code()),
                        sub.reject.message(), nullptr, nullptr);
          continue;
        }
        const JobOutcome out =
            morph::serve::run_job(req, bench.device_config());
        ++tally.completed;
        out.ok() ? ++tally.completed_ok : ++tally.failed_typed;
        const Json exec = out.exec.to_json();
        tally.entries[req.id] = job_entry(
            req, morph::status_code_name(out.status.code()),
            out.status.message(), &out.outputs, &exec);
      }
    } else {
      std::unique_ptr<Server> server;
      pid_t server_pid = -1;
      ServerConfig scfg;
      std::string path = connect_path;
      if (path.empty()) {
        scfg.socket_path = args.get("socket", "/tmp/morph_loadtest.sock");
        scfg.sched = sched;
        scfg.device = bench.device_config();
        scfg.workers = static_cast<std::uint32_t>(args.get_int("workers", 0));
        scfg.journal.path = journal_path;
        if (crash_after > 0) {
          // The victim must be a separate process — SIGKILL is the only
          // honest crash.
          server_pid = spawn_server_process(scfg);
          if (server_pid < 0) {
            std::cerr << "error: failed to spawn the server child\n";
            return 1;
          }
        } else {
          server = std::make_unique<Server>(scfg);
          const Status s = server->start();
          if (!s.ok()) {
            std::cerr << "error: " << s.to_string() << "\n";
            return 1;
          }
        }
        path = scfg.socket_path;
      }

      std::vector<std::unique_ptr<Client>> clients;
      for (std::uint64_t c = 0; c < clients_n; ++c) {
        auto cl = std::make_unique<Client>();
        const Status s = cl->connect(path);
        if (!s.ok()) {
          std::cerr << "error: connect client " << c << ": " << s.to_string()
                    << "\n";
          return 1;
        }
        clients.push_back(std::move(cl));
      }

      // One thread, round-robin over the connections, every frame stamped
      // with its global arrival number: the server's arrival gate admits
      // stamps in order across connections, so the arrival sequence — and
      // with it batching, admission, and placement — replays exactly no
      // matter how the per-connection reader threads interleave.
      std::vector<std::uint64_t> outstanding(clients.size(), 0);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::size_t c = i % clients.size();
        const Status s =
            clients[c]->submit(jobs[i], static_cast<std::int64_t>(i));
        if (!s.ok()) {
          std::cerr << "error: submit job " << i << ": " << s.to_string()
                    << "\n";
          return 1;
        }
        ++outstanding[c];
      }
      morph::throw_if_error(
          clients[0]->send_flush(static_cast<std::int64_t>(jobs.size())));

      std::vector<bool> answered(jobs.size(), false);
      std::uint64_t answered_n = 0;
      auto handle_reply = [&](const Json& msg) -> bool {
        const std::string type = msg.at("type").as_string();
        const auto id = static_cast<std::uint64_t>(msg.at("id").as_int());
        MORPH_CHECK(id < jobs.size());
        MORPH_CHECK_MSG(!answered[id], "duplicate reply for job " << id);
        answered[id] = true;
        ++answered_n;
        const JobRequest& req = jobs[id];
        if (type == "result") {
          ++tally.completed;
          const std::string st = msg.at("status").as_string();
          st == "ok" ? ++tally.completed_ok : ++tally.failed_typed;
          const Json* message = msg.find("message");
          tally.entries[id] = job_entry(
              req, st, message != nullptr ? message->as_string() : "",
              msg.find("outputs"), msg.find("exec"));
          const Json& sv = msg.at("serve");
          tally.queue_cycles.push_back(sv.at("queue_cycles").as_double());
          tally.batches.insert(
              static_cast<std::uint64_t>(sv.at("batch").as_int()));
          tally.makespan_cycles =
              std::max(tally.makespan_cycles, sv.at("end_cycles").as_double());
          return true;
        }
        if (type == "reject") {
          ++tally.rejected;
          tally.entries[id] =
              job_entry(req, msg.at("code").as_string(),
                        msg.at("message").as_string(), nullptr, nullptr);
          return true;
        }
        std::cerr << "error: unexpected reply " << msg.dump() << "\n";
        std::exit(1);
      };

      if (crash_after > 0) {
        // Phase 1: collect replies round-robin (a short receive timeout
        // keeps one quiet connection from stalling the count) until the
        // kill point, then SIGKILL the victim mid-flight.
        for (auto& cl : clients) cl->set_recv_timeout_ms(200);
        const std::uint64_t kill_at =
            std::min<std::uint64_t>(crash_after, jobs.size());
        std::size_t c = 0;
        while (answered_n < kill_at) {
          Json msg;
          const Status s = clients[c]->next_message(&msg);
          c = (c + 1) % clients.size();
          if (s.ok()) {
            handle_reply(msg);
            continue;
          }
          if (s.code() != StatusCode::kTimeout) {
            std::cerr << "error: pre-crash receive: " << s.to_string()
                      << "\n";
            return 1;
          }
        }
        ::kill(server_pid, SIGKILL);
        ::waitpid(server_pid, nullptr, 0);
        std::cerr << "crash campaign: SIGKILL after " << answered_n
                  << " replies; starting recovery\n";
        for (auto& cl : clients) cl->close();

        // Phase 2: a recovery child on the same socket (the stale file the
        // corpse left is probed and unlinked) and the same journal.
        server_pid = spawn_server_process(scfg);
        if (server_pid < 0) {
          std::cerr << "error: failed to spawn the recovery server\n";
          return 1;
        }

        // Phase 3: reconnect and resubmit every unanswered frame with its
        // original arrival stamp, in the original order. Stamps the old
        // process admitted are answered idempotently from the replay;
        // stamps it never saw continue the arrival sequence exactly where
        // it stopped — either way the merged artifact cannot tell a crash
        // happened.
        std::fill(outstanding.begin(), outstanding.end(), 0);
        for (std::size_t k = 0; k < clients.size(); ++k) {
          morph::throw_if_error(clients[k]->connect(path));
          clients[k]->set_recv_timeout_ms(30000);
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
          if (answered[i]) continue;
          const std::size_t k = i % clients.size();
          morph::throw_if_error(
              clients[k]->submit(jobs[i], static_cast<std::int64_t>(i)));
          ++outstanding[k];
        }
        morph::throw_if_error(
            clients[0]->send_flush(static_cast<std::int64_t>(jobs.size())));
      }

      for (std::size_t c = 0; c < clients.size(); ++c) {
        while (outstanding[c] > 0) {
          Json msg;
          morph::throw_if_error(clients[c]->next_message(&msg));
          if (handle_reply(msg)) --outstanding[c];
        }
      }

      // Scrape the durability counters while the server is still up.
      {
        morph::throw_if_error(clients[0]->send_stats());
        Json msg;
        for (;;) {
          morph::throw_if_error(clients[0]->next_message(&msg));
          const Json* t = msg.find("type");
          if (t != nullptr && t->is_string() && t->as_string() == "stats") {
            break;
          }
        }
        const auto stat = [&msg](const char* key) {
          const Json* v = msg.find(key);
          return v != nullptr && v->is_number() ? v->as_double() : 0.0;
        };
        stat_recoveries = stat("recoveries");
        stat_recovered_jobs = stat("recovered_jobs");
        stat_deadline_exceeded = stat("deadline_exceeded");
        stat_cancelled = stat("cancelled");
        stat_quarantined = stat("quarantined_devices");
      }

      const bool do_shutdown = connect_path.empty() ||
                               args.get_bool("shutdown", false);
      if (do_shutdown) {
        morph::throw_if_error(clients[0]->send_shutdown());
        Json bye;
        morph::throw_if_error(clients[0]->next_message(&bye));
      }
      clients.clear();
      server.reset();
      if (server_pid > 0) ::waitpid(server_pid, nullptr, 0);
    }

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Pool-poisoning check: all non-faulted jobs of a cohort (identical
    // spec) must have produced byte-identical results.
    std::uint64_t poisonings = 0;
    std::map<std::string, std::string> cohort_first;
    for (const JobRequest& req : jobs) {
      if (!req.faults.empty()) continue;  // faulted jobs may legally differ
      const Json& e = tally.entries[req.id];
      if (!e.is_object() || e.find("outputs") == nullptr) continue;
      std::string repr = e.at("status").as_string();
      repr += '|';
      repr += e.at("outputs").dump();
      repr += '|';
      repr += e.at("exec").dump();
      auto [it, fresh] = cohort_first.emplace(req.spec.signature(), repr);
      if (!fresh && it->second != repr) ++poisonings;
    }

    if (args.has("jobs-json")) {
      Json doc = Json::object();
      doc.set("schema", "morph-serve-jobs");
      doc.set("version", static_cast<std::int64_t>(1));
      Json arr = Json::array();
      for (const Json& e : tally.entries) arr.push_back(e);
      doc.set("jobs", std::move(arr));
      const std::string out_path = args.get("jobs-json", "");
      std::ofstream os(out_path, std::ios::binary);
      MORPH_CHECK_MSG(os.good(), "cannot open " << out_path);
      os << doc.dump(2) << "\n";
      MORPH_CHECK_MSG(os.good(), "failed writing " << out_path);
      std::cerr << "wrote jobs: " << out_path << "\n";
    }

    const char* mode = oneshot               ? "oneshot"
                       : connect_path.empty() ? "embedded"
                                              : "connect";
    std::cout << "mode:        " << mode << "\n"
              << "jobs:        " << jobs_n << "\n"
              << "completed:   " << tally.completed << " (" << tally.completed_ok
              << " ok, " << tally.failed_typed << " typed failures)\n"
              << "rejected:    " << tally.rejected << "\n"
              << "poisonings:  " << poisonings << "\n"
              << "wall:        " << wall << " s\n";

    auto& row = bench.add_row("loadtest");
    row.metric("jobs", static_cast<double>(jobs_n))
        .metric("completed", static_cast<double>(tally.completed))
        .metric("completed_ok", static_cast<double>(tally.completed_ok))
        .metric("failed_typed", static_cast<double>(tally.failed_typed))
        .metric("rejected", static_cast<double>(tally.rejected))
        .metric("poisonings", static_cast<double>(poisonings))
        .metric("wall_seconds", wall);

    if (!oneshot) {
      const double makespan_ms = bench.model_ms(tally.makespan_cycles);
      const double throughput =
          makespan_ms > 0.0
              ? static_cast<double>(tally.completed) / (makespan_ms / 1e3)
              : 0.0;
      const double occupancy =
          tally.batches.empty()
              ? 0.0
              : static_cast<double>(tally.completed) /
                    static_cast<double>(tally.batches.size());
      std::cout << "makespan:    " << bench.fmt_ms(makespan_ms)
                << " model-ms\n"
                << "throughput:  " << throughput << " jobs/model-s\n"
                << "batches:     " << tally.batches.size() << " (occupancy "
                << occupancy << ")\n"
                << "queue p50/p90/p99: "
                << bench.fmt_ms(bench.model_ms(percentile(tally.queue_cycles, 50)))
                << " / "
                << bench.fmt_ms(bench.model_ms(percentile(tally.queue_cycles, 90)))
                << " / "
                << bench.fmt_ms(bench.model_ms(percentile(tally.queue_cycles, 99)))
                << " model-ms\n";

      auto& sv = bench.report().serve;
      sv.enabled = true;
      sv.metric("jobs", static_cast<double>(jobs_n))
          .metric("completed", static_cast<double>(tally.completed))
          .metric("throughput_jobs_per_model_s", throughput)
          .metric("makespan_model_ms", makespan_ms)
          .metric("queue_p50_model_ms",
                  bench.model_ms(percentile(tally.queue_cycles, 50)))
          .metric("queue_p90_model_ms",
                  bench.model_ms(percentile(tally.queue_cycles, 90)))
          .metric("queue_p99_model_ms",
                  bench.model_ms(percentile(tally.queue_cycles, 99)))
          .metric("batches", static_cast<double>(tally.batches.size()))
          .metric("batch_occupancy", occupancy)
          .metric("rejected", static_cast<double>(tally.rejected))
          .metric("poisonings", static_cast<double>(poisonings))
          .metric("recoveries", stat_recoveries)
          .metric("recovered_jobs", stat_recovered_jobs)
          .metric("deadline_exceeded", stat_deadline_exceeded)
          .metric("cancelled", stat_cancelled)
          .metric("quarantined_devices", stat_quarantined);
    }

    const int rc = bench.finish();
    if (poisonings > 0) {
      std::cerr << "FAIL: " << poisonings << " pool poisoning(s) detected\n";
      return 5;
    }
    if (tally.completed + tally.rejected != jobs_n) {
      std::cerr << "FAIL: " << (jobs_n - tally.completed - tally.rejected)
                << " job(s) unaccounted for\n";
      return 1;
    }
    return rc;
  });
}
