// Ablation (Sec. 6.4): push- vs pull-based propagation in PTA.
//
// The pull model lets exactly one thread write each points-to set, so
// propagation needs no synchronization; the push model pays an atomic per
// target update. Both reach the same fixed point.
#include "bench_common.hpp"
#include "pta/solve.hpp"

int main(int argc, char** argv) {
  using namespace morph;
  CliArgs args(argc, argv);

  bench::header("Ablation — push vs pull propagation in PTA (Sec. 6.4)",
                "pull avoids the synchronization the push model pays");

  Table t({"workload", "mode", "model-ms", "atomics x1e3", "iterations",
           "fixed point"});
  for (const auto& w : pta::spec2000_workloads()) {
    const pta::ConstraintSet cs = pta::spec_like(w);
    const pta::PtsSets ser = pta::solve_serial(cs);
    for (bool push : {false, true}) {
      gpu::Device dev(bench::device_config(args));
      pta::PtaOptions opts;
      opts.push_based = push;
      pta::PtaStats st;
      const pta::PtsSets got = pta::solve_gpu(cs, dev, opts, &st);
      t.add_row({w.name, push ? "push" : "pull",
                 bench::fmt_ms(bench::model_ms(st.modeled_cycles)),
                 Table::num(dev.stats().atomics / 1e3, 1),
                 std::to_string(st.iterations),
                 pta::equal_pts(ser, got) ? "agree" : "MISMATCH"});
    }
  }
  t.print(std::cout);
  return 0;
}
