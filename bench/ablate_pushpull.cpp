// Ablation (Sec. 6.4): push- vs pull-based propagation in PTA.
//
// The pull model lets exactly one thread write each points-to set, so
// propagation needs no synchronization; the push model pays an atomic per
// target update. Both reach the same fixed point.
#include "bench_common.hpp"
#include "pta/solve.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv,
                     "Ablation — push vs pull propagation in PTA (Sec. 6.4)",
                     "pull avoids the synchronization the push model pays");

  Table t({"workload", "mode", "model-ms", "atomics x1e3", "iterations",
           "fixed point"});
  for (const auto& w : pta::spec2000_workloads()) {
    const pta::ConstraintSet cs = pta::spec_like(w);
    const pta::PtsSets ser = pta::solve_serial(cs);
    for (bool push : {false, true}) {
      gpu::Device dev(bench.device_config());
      pta::PtaOptions opts;
      opts.push_based = push;
      pta::PtaStats st;
      const pta::PtsSets got = pta::solve_gpu(cs, dev, opts, &st);
      const bool agree = pta::equal_pts(ser, got);
      t.add_row({w.name, push ? "push" : "pull",
                 bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
                 Table::num(dev.stats().atomics / 1e3, 1),
                 std::to_string(st.iterations),
                 agree ? "agree" : "MISMATCH"});

      auto& rep =
          bench.add_row(std::string(w.name) + "/" + (push ? "push" : "pull"));
      bench.add_device_metrics(rep, dev);
      rep.metric("iterations", static_cast<double>(st.iterations))
          .metric("fixed_point_agrees", agree ? 1.0 : 0.0);
    }
  }
  t.print(std::cout);
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
