// Ablation (Sec. 7.1 / 7.2): subgraph addition and deletion strategies.
//
// (a) PTA: Kernel-Only chunk size sweep (the paper reports the best size is
//     input dependent, between 512 and 4096) — chunk count vs fragmentation.
// (b) DMR: Recycle vs Mark deletion, and Pre-allocation vs Host-Only
//     on-demand growth — storage footprint vs modeled time.
#include "bench_common.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"
#include "pta/solve.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv,
                     "Ablation — PTA Kernel-Only chunk size (Sec. 7.1)",
                     "small chunks: many device mallocs; large: fragmentation",
                     {"vars", "cons", "triangles"});
  {
    const pta::ConstraintSet cs = pta::synthetic_program(
        static_cast<std::uint32_t>(bench.args().get_positive_int("vars",
                                                                 4000)),
        static_cast<std::uint32_t>(bench.args().get_positive_int("cons",
                                                                 5000)),
        31);
    Table t({"chunk elems", "device mallocs", "bytes allocated x1e6",
             "model-ms", "edges added"});
    for (std::uint32_t chunk : {128u, 512u, 1024u, 2048u, 4096u}) {
      gpu::Device dev(bench.device_config());
      pta::PtaOptions opts;
      opts.chunk_elems = chunk;
      pta::PtaStats st;
      pta::solve_gpu(cs, dev, opts, &st);
      t.add_row({std::to_string(chunk), std::to_string(st.device_mallocs),
                 Table::num(dev.stats().bytes_allocated / 1e6, 2),
                 bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
                 std::to_string(st.edges_added)});

      auto& rep = bench.add_row("chunk/" + std::to_string(chunk));
      bench.add_device_metrics(rep, dev);
      rep.metric("edges_added", static_cast<double>(st.edges_added));
    }
    t.print(std::cout);
  }

  bench.section("Ablation — DMR deletion & allocation strategies (Sec. 7.2)",
                "recycling trades compaction for slot reuse; prealloc "
                "avoids reallocs at a memory cost");
  {
    const std::size_t n = static_cast<std::size_t>(
        bench.args().get_positive_int("triangles", 50000));
    dmr::Mesh base = dmr::generate_input_mesh(n, 33);
    Table t({"variant", "model-ms", "final slots", "live tris",
             "reallocs", "bytes alloc x1e6"});
    struct V {
      const char* name;
      bool recycle;
      bool prealloc;
    };
    const V variants[] = {
        {"mark only, on-demand", false, false},
        {"recycle, on-demand", true, false},
        {"mark only, prealloc", false, true},
        {"recycle, prealloc", true, true},
    };
    for (const V& v : variants) {
      dmr::Mesh m = base;
      gpu::Device dev(bench.device_config());
      dmr::RefineOptions opts;
      opts.recycle = v.recycle;
      opts.prealloc = v.prealloc;
      const dmr::RefineStats st = dmr::refine_gpu(m, dev, opts);
      t.add_row({v.name, bench.fmt_ms(bench.model_ms(st.modeled_cycles)),
                 std::to_string(m.num_slots()), std::to_string(m.num_live()),
                 std::to_string(dev.stats().reallocs),
                 Table::num(dev.stats().bytes_allocated / 1e6, 1)});

      auto& rep = bench.add_row(std::string("dmr/") + v.name);
      bench.add_device_metrics(rep, dev);
      rep.metric("final_slots", static_cast<double>(m.num_slots()))
          .metric("live_tris", static_cast<double>(m.num_live()));
    }
    t.print(std::cout);
    std::cout << "\n(recycling keeps the slot array near the live count; "
                 "mark-only leaves tombstones)\n";
  }
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
