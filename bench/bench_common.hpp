// Shared harness for the figure-reproduction benches.
//
// Every bench prints the same rows/series as the corresponding figure or
// table of the paper, and (new with the telemetry subsystem) can emit the
// same data machine-readably:
//
//   --json=<path>       write a versioned BenchReport (telemetry/bench_report
//                       .hpp); morph-report pretty-prints/diffs/merges these.
//   --trace=<path>      record every kernel launch/phase/barrier on the
//                       simulated devices and write a Chrome trace-event file
//                       (open in Perfetto or chrome://tracing).
//   --trace-blocks      additionally record one span per executed block
//                       (one track per simulated SM).
//   --clock-ghz=<ghz>   nominal device clock used to express modeled cycles
//                       as milliseconds (default 1.0, the paper-era Fermi
//                       ballpark); lives in gpu::DeviceConfig::clock_ghz so
//                       tables and JSON reports always agree.
//   --faults=<spec>     arm a deterministic fault-injection campaign on every
//                       device the bench constructs (docs/RESILIENCE.md);
//                       --fault-seed=<n> keys its probabilistic clauses.
//   --worklist-mode=M   worklist organization for the data-driven drivers:
//                       "centralized" (default; one GlobalWorklist) or
//                       "sharded" (per-block shard rings with deterministic
//                       stealing; see DESIGN.md "Sharded worklists").
//                       --worklist-shards=N overrides the shard count
//                       (0 = auto, 4 per SM).
//   --sanitize=<spec>   arm the MorphSan hazard checker (docs/ANALYSIS.md)
//                       on every device the bench constructs; <spec> is a
//                       comma list of races,worklist,memory,barriers or
//                       "all". The report is printed to stderr, a
//                       "sanitizer" section is added to --json output, and
//                       the bench exits 4 if any hazard was found.
//
// Cross-platform timing claims use the simulator's modeled cycles (reported
// as "model-ms"); wall-clock seconds of the real computation are printed
// alongside. Pass --scale=N to divide workload sizes by N (default sizes
// are already scaled from the paper's to laptop range; see DESIGN.md).
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/sanitizer.hpp"
#include "gpu/config.hpp"
#include "gpu/device.hpp"
#include "resilience/fault.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/trace.hpp"

namespace morph::bench {

/// One bench run: CLI parsing (with unknown-flag warnings), the shared
/// device configuration, the clock-derived model-ms scale, and the optional
/// machine-readable outputs. Construct it first thing in main(), add one
/// report row per printed table row, and `return bench.finish();`.
class Bench {
 public:
  Bench(int argc, char** argv, const std::string& title,
        const std::string& paper_ref,
        std::vector<std::string> extra_flags = {})
      : args_(argc, argv) {
    std::vector<std::string> known = {"host-workers", "json",      "trace",
                                      "trace-blocks", "clock-ghz",
                                      "worklist-mode", "worklist-shards",
                                      "sanitize"};
    const auto& fault_flags = resilience::fault_cli_flags();
    known.insert(known.end(), fault_flags.begin(), fault_flags.end());
    known.insert(known.end(), extra_flags.begin(), extra_flags.end());
    args_.warn_unknown(known, std::cerr);

    base_cfg_.host_workers = host_workers_arg(args_);
    const std::string wm = args_.get("worklist-mode", "centralized");
    if (!gpu::parse_worklist_mode(wm, &base_cfg_.worklist_mode)) {
      std::cerr << "error: --worklist-mode must be 'centralized' or "
                   "'sharded' (got '"
                << wm << "')\n";
      std::exit(2);
    }
    const int ws = args_.get_int("worklist-shards", 0);
    if (ws < 0) {
      std::cerr << "error: --worklist-shards must be >= 0 (0 = auto)\n";
      std::exit(2);
    }
    base_cfg_.worklist_shards = static_cast<std::uint32_t>(ws);
    if (args_.has("sanitize")) {
      analysis::SanitizeOptions sopts;
      std::string spec = args_.get("sanitize", "all");
      if (spec == "1") spec = "all";  // bare --sanitize arms everything
      if (!analysis::SanitizeOptions::parse(spec, &sopts)) {
        std::cerr << "error: --sanitize must be a comma list of "
                     "races,worklist,memory,barriers or 'all' (got '"
                  << spec << "')\n";
        std::exit(2);
      }
      san_ = std::make_unique<analysis::Sanitizer>(sopts);
      base_cfg_.sanitize = san_.get();
    }
    fault_plan_ = resilience::fault_plan_from_args(
        args_.get("faults", ""),
        static_cast<std::uint64_t>(args_.get_int("fault-seed", 1)));
    if (fault_plan_) base_cfg_.faults = &*fault_plan_;
    base_cfg_.clock_ghz = args_.get_double("clock-ghz", 1.0);
    if (base_cfg_.clock_ghz <= 0.0) {
      std::cerr << "error: --clock-ghz must be positive\n";
      std::exit(2);
    }
    // 1e-6/1.0 == 1e-6 exactly, so the default clock reproduces the
    // historical `cycles * 1e-6` bit for bit.
    ms_per_cycle_ = 1e-6 / base_cfg_.clock_ghz;

    if (args_.has("trace")) {
      telemetry::TraceSink::Options topts;
      topts.block_spans = args_.get_bool("trace-blocks", false);
      sink_ = std::make_unique<telemetry::TraceSink>(topts);
      base_cfg_.trace = sink_.get();
    }

    report_.bench = bench_name(argc, argv);
    report_.title = title;
    report_.clock_ghz = base_cfg_.clock_ghz;
    for (const auto& [k, v] : args_.flags()) {
      if (k == "json" || k == "trace") continue;  // output paths vary per run
      report_.args.emplace_back(k, v);
    }

    section(title, paper_ref);
  }

  /// Prints a section header (the constructor prints one for `title`;
  /// benches with several tables call this in between).
  void section(const std::string& title, const std::string& paper_ref) const {
    std::cout << "\n=== " << title << " ===\n"
              << "reproduces: " << paper_ref << "\n\n";
  }

  CliArgs& args() { return args_; }

  /// Device configuration shared by the bench harnesses: block-parallel host
  /// execution by default (--host-workers, 0 = one worker per hardware
  /// thread) and the trace sink when --trace was given. Modeled statistics
  /// do not depend on either.
  const gpu::DeviceConfig& device_config() const { return base_cfg_; }

  /// Modeled cycles -> milliseconds at the nominal device clock.
  double model_ms(double cycles) const { return cycles * ms_per_cycle_; }

  std::string fmt_ms(double ms) const { return Table::num(ms, 2); }

  telemetry::BenchReport& report() { return report_; }
  telemetry::BenchReport::Row& add_row(const std::string& name) {
    return report_.add_row(name);
  }

  /// Standard per-device metrics every bench row records for the GPU arm.
  void add_device_metrics(telemetry::BenchReport::Row& row,
                          const gpu::Device& dev) const {
    const gpu::DeviceStats& st = dev.stats();
    row.metric("modeled_cycles", st.modeled_cycles)
        .metric("model_ms", model_ms(st.modeled_cycles))
        .metric("launches", static_cast<double>(st.launches))
        .metric("barriers", static_cast<double>(st.barriers))
        .metric("total_work", static_cast<double>(st.total_work))
        .metric("warp_steps", static_cast<double>(st.warp_steps))
        .metric("atomics", static_cast<double>(st.atomics))
        .metric("global_accesses", static_cast<double>(st.global_accesses))
        .metric("divergence", st.divergence(dev.config().warp_size))
        .metric("device_mallocs", static_cast<double>(st.device_mallocs))
        .metric("reallocs", static_cast<double>(st.reallocs))
        .metric("bytes_allocated", static_cast<double>(st.bytes_allocated))
        .metric("bytes_copied", static_cast<double>(st.bytes_copied))
        .metric("wl_local_ops", static_cast<double>(st.wl_local_ops))
        .metric("wl_contended_ops", static_cast<double>(st.wl_contended_ops))
        .metric("wl_steals", static_cast<double>(st.wl_steals))
        .metric("wl_spills", static_cast<double>(st.wl_spills))
        .metric("wl_contention_cycles",
                st.wl_contention_cycles(dev.config().atomic_cost,
                                        dev.config().atomic_concurrency));
  }

  /// The hazard checker armed by --sanitize (nullptr when the flag is off);
  /// device_config() already points at it, so most benches never touch this.
  analysis::Sanitizer* sanitizer() const { return san_.get(); }

  /// Writes --json / --trace outputs (if requested). Returns the process
  /// exit code for main(): 0, or 4 if the sanitizer found hazards.
  int finish() {
    if (san_) {
      report_.sanitizer.enabled = true;
      report_.sanitizer.spec = san_->options().to_string();
      for (std::size_t c = 0; c < analysis::kNumHazardClasses; ++c) {
        const auto cls = static_cast<analysis::HazardClass>(c);
        report_.sanitizer.counts.emplace_back(
            analysis::hazard_class_name(cls),
            static_cast<double>(san_->finding_count(cls)));
      }
      for (const analysis::Finding& f : san_->findings()) {
        report_.sanitizer.findings.push_back(f.to_string());
      }
      report_.sanitizer.suppressed =
          static_cast<double>(san_->suppressed());
    }
    if (args_.has("json")) {
      report_.save(args_.get("json", ""));
      std::cerr << "wrote bench report: " << args_.get("json", "") << "\n";
    }
    if (sink_) {
      telemetry::ChromeTraceOptions topts;
      topts.clock_ghz = base_cfg_.clock_ghz;
      topts.dropped_events = sink_->dropped();
      if (topts.dropped_events > 0) {
        std::cerr << "warning: trace ring overflow dropped "
                  << topts.dropped_events << " events\n";
      }
      telemetry::write_chrome_trace(args_.get("trace", ""), sink_->merged(),
                                    topts);
      std::cerr << "wrote trace: " << args_.get("trace", "") << "\n";
    }
    if (san_) {
      san_->report(std::cerr);
      if (!san_->clean()) return 4;
    }
    return 0;
  }

 private:
  static std::string bench_name(int argc, char** argv) {
    if (argc < 1 || argv[0] == nullptr) return "bench";
    const std::string path = argv[0];
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
  }

  CliArgs args_;
  gpu::DeviceConfig base_cfg_;
  /// Owns the --faults campaign base_cfg_.faults points at (if armed).
  std::optional<resilience::FaultPlan> fault_plan_;
  /// Owns the --sanitize checker base_cfg_.sanitize points at (if armed).
  std::unique_ptr<analysis::Sanitizer> san_;
  double ms_per_cycle_ = 1e-6;
  std::unique_ptr<telemetry::TraceSink> sink_;
  telemetry::BenchReport report_;
};

/// Runs a bench body, turning an unrecovered injected fault (FaultError:
/// exhausted retries, watchdog give-up, invariant violation) into a clean
/// nonzero exit instead of a terminate(). Mains do
/// `return bench::guarded_main([&] { ...; return bench.finish(); });`.
template <typename F>
int guarded_main(F&& body) {
  try {
    return body();
  } catch (const FaultError& e) {
    std::cerr << "fault campaign failed: " << e.status().to_string() << "\n";
    return 3;
  }
}

}  // namespace morph::bench
