// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same rows/series as the corresponding figure or
// table of the paper. Cross-platform timing claims use the simulator's
// modeled cycles (reported as "model-ms": modeled cycles scaled by a nominal
// 1 GHz clock); wall-clock seconds of the real computation are printed
// alongside. Pass --scale=N to divide workload sizes by N (default sizes
// are already scaled from the paper's to laptop range; see DESIGN.md).
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "gpu/config.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace morph::bench {

/// Device configuration shared by the bench harnesses: block-parallel host
/// execution by default (--host-workers, 0 = one worker per hardware
/// thread). Modeled statistics do not depend on the value.
inline gpu::DeviceConfig device_config(const CliArgs& args) {
  gpu::DeviceConfig cfg;
  cfg.host_workers = host_workers_arg(args);
  return cfg;
}

/// Modeled cycles -> milliseconds at a nominal 1 GHz device clock.
inline double model_ms(double cycles) { return cycles * 1e-6; }

inline std::string fmt_ms(double ms) { return Table::num(ms, 2); }

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace morph::bench
