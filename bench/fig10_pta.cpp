// Figure 10 (table): points-to analysis on six SPEC 2000 inputs.
//
// Paper columns: benchmark, vars, constraints, serial ms, Galois-48 ms, GPU
// ms; the GPU is 1.9x..34.7x faster than Galois-48 with a geometric-mean
// speedup of 9.3x, analyzing all six programs in 74 ms total. Constraint
// sets here are synthetic with the paper's published sizes (see DESIGN.md).
#include <vector>

#include "bench_common.hpp"
#include "pta/solve.hpp"
#include "support/stats.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv,
                     "Fig. 10 — Points-to Analysis on SPEC 2000 sizes",
                     "GPU beats Galois-48 on every row; paper geomean 9.3x");

  Table t({"benchmark", "vars", "cons", "serial model-ms",
           "Galois-48 model-ms", "GPU model-ms", "speedup vs 48",
           "fixed point"});
  std::vector<double> speedups;
  double gpu_total_ms = 0.0;
  for (const auto& w : pta::spec2000_workloads()) {
    const pta::ConstraintSet cs = pta::spec_like(w);

    pta::PtaStats st_ser, st_mc, st_gpu;
    const pta::PtsSets ser = pta::solve_serial(cs, &st_ser);
    cpu::ParallelRunner runner({.workers = 48});
    const pta::PtsSets mc = pta::solve_multicore(cs, runner, &st_mc);
    gpu::Device dev(bench.device_config());
    const pta::PtsSets gp = pta::solve_gpu(cs, dev, {}, &st_gpu);

    const bool agree = pta::equal_pts(ser, gp) && pta::equal_pts(ser, mc);
    const double speedup = st_mc.modeled_cycles / st_gpu.modeled_cycles;
    speedups.push_back(speedup);
    gpu_total_ms += bench.model_ms(st_gpu.modeled_cycles);
    t.add_row({w.name, std::to_string(w.vars), std::to_string(w.cons),
               bench.fmt_ms(bench.model_ms(st_ser.modeled_cycles)),
               bench.fmt_ms(bench.model_ms(st_mc.modeled_cycles)),
               bench.fmt_ms(bench.model_ms(st_gpu.modeled_cycles)),
               Table::num(speedup, 1), agree ? "agree" : "MISMATCH"});

    auto& rep = bench.add_row(w.name);
    bench.add_device_metrics(rep, dev);
    rep.metric("vars", static_cast<double>(w.vars))
        .metric("cons", static_cast<double>(w.cons))
        .metric("serial_modeled_cycles", st_ser.modeled_cycles)
        .metric("galois48_modeled_cycles", st_mc.modeled_cycles)
        .metric("speedup_vs_48", speedup)
        .metric("fixed_point_agrees", agree ? 1.0 : 0.0);
  }
  t.print(std::cout);
  std::cout << "\ngeomean speedup GPU vs Galois-48: "
            << Table::num(geomean(speedups), 1)
            << "x (paper: 9.3x)  |  GPU total: "
            << Table::num(gpu_total_ms, 1) << " model-ms (paper: 74 ms)\n";
  bench.add_row("summary")
      .metric("speedup_geomean", geomean(speedups))
      .metric("gpu_total_model_ms", gpu_total_ms);
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
