// Figure 9 (table): Survey Propagation performance.
//
// Paper rows: (a) K=3 at the hard ratio 4.2 with N = 1M..4M literals —
// Galois-48 108..445 s vs GPU 35..157 s (GPU ~3x faster, scales linearly);
// (b) N=1M with K=3..6 at the hard ratios — the multicore version (which
// re-traverses the graph instead of caching per-edge products) blows up:
// 3,033 s at K=4, 40,832 s at K=5, out of time at K=6.
//
// SP is a stochastic solver, so full solves follow divergent trajectories
// per driver; to keep the comparison apples-to-apples this bench runs a
// *fixed* SP workload on each platform — 3 decimation phases of 30 survey
// sweeps each (eps = 0 disables early convergence) — and reports modeled
// time. The multicore arm executes a slice of that workload and its
// modeled time is scaled to the full sweep count (its per-sweep cost is
// constant); rows whose multicore estimate exceeds 50x the GPU's time are
// flagged OOT, like the paper's K=6 entry.
#include "bench_common.hpp"
#include "sp/survey.hpp"

int run_bench(int argc, char** argv) {
  using namespace morph;
  bench::Bench bench(argc, argv,
                     "Fig. 9 — Survey Propagation (fixed 90-sweep workload)",
                     "GPU ~3x over Galois-48 at K=3; multicore blows up for "
                     "K>=4 (OOT at K=6)",
                     {"scale"});
  const auto scale =
      static_cast<std::uint32_t>(bench.args().get_positive_int("scale", 100));

  struct RowSpec {
    std::uint32_t n_paper;  // literals, paper scale
    std::uint32_t k;
  };
  const RowSpec rows[] = {
      {1000000, 3}, {2000000, 3}, {3000000, 3}, {4000000, 3},
      {1000000, 4}, {1000000, 5}, {1000000, 6},
  };

  sp::SpOptions base;
  base.seed = 5;
  base.eps = 0.0;        // run sweeps to the fixed count
  base.max_sweeps = 30;
  base.max_phases = 3;
  base.decimate_frac = 0.01;
  base.walksat_flips = 1;  // the endgame is not part of the measurement
  base.walksat_auto_budget = false;

  Table t({"M x1e6 (paper)", "N x1e6 (paper)", "K", "Galois-48 model-ms",
           "GPU model-ms", "ratio", "GPU wall-s"});
  for (const RowSpec& r : rows) {
    const std::uint32_t n = r.n_paper / scale;
    const double ratio = sp::hard_ratio(r.k);
    const auto m = static_cast<std::uint32_t>(ratio * n);
    auto f = sp::random_ksat(n, m, r.k, 17);

    gpu::Device dev(bench.device_config());
    const sp::SpResult rg = sp::solve_gpu(f, dev, base);

    // Multicore slice: one sweep, scaled to the GPU run's sweep count.
    sp::SpOptions mc_opts = base;
    mc_opts.max_sweeps = 1;
    mc_opts.max_phases = 1;
    cpu::ParallelRunner runner({.workers = 48});
    const sp::SpResult rm = sp::solve_multicore(f, runner, mc_opts);
    const double mc_scaled =
        rm.modeled_cycles * static_cast<double>(rg.sweeps) /
        static_cast<double>(std::max<std::uint64_t>(rm.sweeps, 1));

    const double speed_ratio = mc_scaled / rg.modeled_cycles;
    const bool oot = speed_ratio > 50.0;
    t.add_row({Table::num(ratio * r.n_paper / 1e6, 1),
               Table::num(r.n_paper / 1e6, 0), std::to_string(r.k),
               oot ? "OOT (" + bench.fmt_ms(bench.model_ms(mc_scaled)) + ")"
                   : bench.fmt_ms(bench.model_ms(mc_scaled)),
               bench.fmt_ms(bench.model_ms(rg.modeled_cycles)),
               Table::num(speed_ratio, 1), Table::num(rg.wall_seconds, 2)});

    auto& rep = bench.add_row("N" + Table::num(r.n_paper / 1e6, 0) + "M/K" +
                              std::to_string(r.k));
    bench.add_device_metrics(rep, dev);
    rep.metric("galois48_modeled_cycles", mc_scaled)
        .metric("ratio", speed_ratio)
        .metric("oot", oot ? 1.0 : 0.0)
        .metric("wall_seconds", rg.wall_seconds);
  }
  t.print(std::cout);
  std::cout << "\n(ratio = Galois-48 / GPU modeled time; paper: ~3x at K=3, "
               "36x at K=4, 229x at K=5, OOT at K=6)\n";
  return bench.finish();
}

int main(int argc, char** argv) {
  return morph::bench::guarded_main([&] { return run_bench(argc, argv); });
}
